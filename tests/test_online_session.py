"""ControllerSession: the feed/read/subscribe API and the event wire schema.

Pins the contracts the serve daemon is built on: the wire-schema dict
round trip and its strict validation, line-numbered trace-file errors,
feed-vs-simulator bit-for-bit equivalence, the byte-stable state-dump
round trip, and the ``replay_failure_trace`` deprecation shim.
"""

from __future__ import annotations

import json

import pytest

from repro.online import (
    CapacityChange,
    ControllerSession,
    DemandUpdate,
    LinkFailure,
    LinkRecovery,
    LinkWeightChange,
    NetworkEvent,
    TraceFormatError,
    failure_recovery_trace,
    from_dict,
    parse_event_line,
    read_event_trace,
    replay_failure_trace,
    to_dict,
    write_event_trace,
)
from repro.online.events import EventError
from repro.online.session import ROW_DECIMALS, measurement_row
from repro.scenarios import single_link_failures
from repro.serve.wire import dumps_state
from repro.topology.backbones import abilene_network
from repro.traffic.fortz_thorup_tm import abilene_traffic_matrix


@pytest.fixture(scope="module")
def workload():
    network = abilene_network()
    demands = abilene_traffic_matrix(network, total_volume=1.0, seed=1).scaled(
        0.15 * network.total_capacity()
    )
    return network, demands


def fresh_session(workload, **kwargs):
    network, demands = workload
    return ControllerSession(network, demands, **kwargs)


def abilene_trace(network, count=3, period=600.0, outage=300.0):
    scenarios = single_link_failures(network)[:count]
    return scenarios, failure_recovery_trace(
        network, scenarios, period=period, outage=outage
    )


# ----------------------------------------------------------------------
# wire schema
# ----------------------------------------------------------------------
class TestWireSchema:
    EVENTS = [
        NetworkEvent(time=1.0),
        LinkFailure(link=("a", "b"), time=2.0),
        LinkRecovery(link=("a", "b"), time=3.0),
        LinkWeightChange(link=("a", "b"), weight=4.0, time=5.0),
        CapacityChange(link=("a", "b"), capacity=6.0, time=7.0),
        DemandUpdate(source="a", target="b", volume=8.0, time=9.0),
    ]

    @pytest.mark.parametrize("event", EVENTS, ids=lambda e: e.kind)
    def test_round_trip(self, event):
        payload = to_dict(event)
        assert payload["v"] == 1
        assert payload["event"] == event.kind
        restored = from_dict(payload)
        assert type(restored) is type(event)
        assert to_dict(restored) == payload

    def test_round_trip_survives_json(self):
        event = LinkWeightChange(link=("SNVAng", "STTLng"), weight=3.5, time=12.0)
        assert from_dict(json.loads(json.dumps(to_dict(event)))) == event

    @pytest.mark.parametrize(
        "payload, message",
        [
            ({"event": "link-failure", "time": 0.0, "link": ["a", "b"], "v": 9},
             "wire version"),
            ({"v": 1, "time": 0.0}, "unknown event kind"),
            ({"v": 1, "event": "nope", "time": 0.0}, "unknown event kind"),
            ({"v": 1, "event": "link-failure", "time": 0.0}, "missing field"),
            ({"v": 1, "event": "link-failure", "time": 0.0, "link": ["a", "b"],
              "extra": 1}, "unexpected field"),
            ({"v": 1, "event": "link-failure", "time": 0.0, "link": ["a"]},
             "link"),
            ({"v": 1, "event": "noop", "time": "later"}, "time"),
        ],
    )
    def test_strict_validation(self, payload, message):
        with pytest.raises(EventError, match=message):
            from_dict(payload)

    def test_non_dict_rejected(self):
        with pytest.raises(EventError):
            from_dict(["not", "a", "dict"])


# ----------------------------------------------------------------------
# trace files
# ----------------------------------------------------------------------
class TestTraceFiles:
    def test_write_read_round_trip(self, tmp_path):
        events = [
            LinkFailure(link=(1, 2), time=0.0),
            LinkRecovery(link=(1, 2), time=300.0),
        ]
        path = tmp_path / "trace.jsonl"
        assert write_event_trace(path, events) == 2
        restored = read_event_trace(path)
        # Node names stringify on the wire; kinds, times and shape survive.
        assert [e.kind for e in restored] == [e.kind for e in events]
        assert [e.time for e in restored] == [e.time for e in events]

    def test_malformed_line_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"v": 1, "event": "noop", "time": 0.0}\n'
            "\n"
            "not json\n"
        )
        with pytest.raises(TraceFormatError, match=r"bad\.jsonl:3: invalid JSON"):
            read_event_trace(path)

    def test_invalid_event_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 1, "event": "link-failure", "time": 0.0}\n')
        with pytest.raises(TraceFormatError, match=r"bad\.jsonl:1: .*missing field"):
            read_event_trace(path)

    def test_empty_trace_is_an_error(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n\n")
        with pytest.raises(TraceFormatError, match="no events"):
            read_event_trace(path)

    def test_parse_event_line_names_the_source(self):
        with pytest.raises(TraceFormatError, match="<socket>:7"):
            parse_event_line("{broken", 7, source="<socket>")


# ----------------------------------------------------------------------
# feed / read state / subscribe
# ----------------------------------------------------------------------
class TestControllerSession:
    def test_key_defaults_to_topology_name(self, workload):
        session = fresh_session(workload)
        assert session.key == workload[0].name
        assert fresh_session(workload, key="tenant-1").key == "tenant-1"

    def test_feed_matches_simulator_replay_bit_for_bit(self, workload):
        network, _ = workload
        _, trace = abilene_trace(network)
        fed = fresh_session(workload)
        fed.feed_many(trace)
        replayed = fresh_session(workload)
        replayed.replay(trace)
        assert fed.event_rows() == replayed.event_rows()
        assert [(t, k, m.mlu) for t, k, m in fed.timeline] == [
            (t, k, m.mlu) for t, k, m in replayed.timeline
        ]

    def test_measurement_row_is_rounded(self, workload):
        session = fresh_session(workload)
        row = measurement_row(0, 1.0, "noop", session.measure())
        assert row["mlu"] == round(row["mlu"], ROW_DECIMALS)
        assert set(row) == {
            "seq", "time", "kind", "mlu", "utility", "routed", "dropped", "connected",
        }

    def test_subscribe_and_unsubscribe(self, workload):
        network, _ = workload
        _, trace = abilene_trace(network, count=1)
        session = fresh_session(workload)
        seen = []
        unsubscribe = session.subscribe(
            lambda s, when, kind, m: seen.append((when, kind))
        )
        session.feed(trace[0])
        assert seen == [(trace[0].time, trace[0].kind)]
        unsubscribe()
        session.feed(trace[1])
        assert len(seen) == 1

    def test_forwarding_shape(self, workload):
        network, demands = workload
        session = fresh_session(workload)
        destination = next(iter(demands.items()))[0][1]
        table = session.forwarding(destination)
        assert table["destination"] == str(destination)
        assert table["nodes"]
        for entry in table["nodes"].values():
            assert entry["next_hops"] == sorted(entry["next_hops"])
            assert entry["split"] == pytest.approx(1.0 / len(entry["next_hops"]))

    def test_forwarding_unknown_destination(self, workload):
        session = fresh_session(workload)
        with pytest.raises(EventError, match="unknown destination"):
            session.forwarding("not-a-node")

    def test_status_and_counters(self, workload):
        network, _ = workload
        _, trace = abilene_trace(network, count=2)
        session = fresh_session(workload)
        failures = [e for e in trace if e.kind == "link-failure" and e.time == 0.0]
        session.feed_many(failures)
        status = session.status()
        assert status["topology"] == network.name
        assert status["events"] == session.processed_events
        assert status["failed_links"]  # the t=0 outage has not healed yet
        counters = session.counters()
        assert counters["events"] == session.processed_events
        assert sum(counters["events_by_kind"].values()) == counters["events"]


# ----------------------------------------------------------------------
# state dump
# ----------------------------------------------------------------------
class TestStateDump:
    def test_round_trip_is_byte_stable(self, workload):
        network, _ = workload
        _, trace = abilene_trace(network, count=2)
        session = fresh_session(workload)
        session.feed_many(trace[:3])  # leave failures outstanding
        dump = session.state_dump()
        assert dump["schema"] == 1
        assert dump["state"]["failed_links"]
        restored = ControllerSession.from_state_dump(abilene_network(), dump)
        assert dumps_state(restored.state_dump()["state"]) == dumps_state(
            dump["state"]
        )
        assert restored.measure().mlu == pytest.approx(
            session.measure().mlu, rel=1e-12
        )

    def test_restored_session_keeps_absorbing_events(self, workload):
        network, _ = workload
        _, trace = abilene_trace(network, count=2)
        session = fresh_session(workload)
        session.feed_many(trace[:3])
        restored = ControllerSession.from_state_dump(
            abilene_network(), session.state_dump()
        )
        for event, mlu in zip(
            trace[3:], [m.mlu for m in session.feed_many(trace[3:])], strict=True
        ):
            assert restored.feed(event).mlu == pytest.approx(mlu, rel=1e-12)

    def test_wrong_topology_rejected(self, workload, diamond_network):
        session = fresh_session(workload)
        with pytest.raises(EventError, match="does not match"):
            ControllerSession.from_state_dump(diamond_network, session.state_dump())

    def test_wrong_schema_rejected(self, workload):
        session = fresh_session(workload)
        dump = session.state_dump()
        dump["schema"] = 99
        with pytest.raises(EventError, match="schema"):
            ControllerSession.from_state_dump(abilene_network(), dump)


# ----------------------------------------------------------------------
# the thin batch driver and its deprecation shim
# ----------------------------------------------------------------------
class TestReplayShim:
    def test_replay_uses_prebuilt_session(self, workload):
        network, demands = workload
        scenarios, _ = abilene_trace(network)
        session = fresh_session(workload)
        result = replay_failure_trace(
            network, demands, scenarios[:1], session=session
        )
        assert result.session is session
        assert result.timeline is session.timeline
        assert result.outages

    def test_legacy_kwargs_warn(self, workload):
        network, demands = workload
        scenarios, _ = abilene_trace(network)
        with pytest.warns(DeprecationWarning, match="ControllerSession"):
            replay_failure_trace(
                network, demands, scenarios[:1], max_affected_fraction=0.9
            )

    def test_legacy_kwargs_alongside_session_rejected(self, workload):
        network, demands = workload
        scenarios, _ = abilene_trace(network)
        with pytest.raises(ValueError, match="ControllerSession"):
            replay_failure_trace(
                network,
                demands,
                scenarios[:1],
                session=fresh_session(workload),
                verify=True,
            )

    def test_foreign_policy_alongside_session_rejected(self, workload):
        network, demands = workload
        scenarios, _ = abilene_trace(network)
        with pytest.raises(ValueError, match="policy"):
            replay_failure_trace(
                network,
                demands,
                scenarios[:1],
                policy=object(),
                session=fresh_session(workload),
            )
