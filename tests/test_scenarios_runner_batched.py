"""Batched evaluation and error paths of the scenario batch runner.

PR 2 wires :func:`repro.scenarios.runner.evaluate_scenarios` through
``RoutingProtocol.batch_link_loads`` so demand-only scenarios share one
compiled weight setting.  These tests pin two contracts:

* the batched fast path is *invisible*: its results match the per-cell
  :func:`evaluate_scenario` oracle row for row, and anything it cannot batch
  (topology perturbations, empty workloads, broken cells, non-batchable
  protocols) falls back to the per-cell path with its error isolation intact;
* error handling end to end: a failure inside a worker process surfaces as a
  per-cell error result (never an exception, never sinking the sweep), and
  error results are never written to the on-disk cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.protocols.base import RoutingProtocol
from repro.scenarios import BatchRunner, ProtocolSpec, Scenario
from repro.scenarios.generators import (
    baseline_scenario,
    single_link_failures,
    uniform_scaling_ensemble,
)
from repro.scenarios.runner import PROTOCOL_REGISTRY, evaluate_scenario, evaluate_scenarios, register_protocol
from repro.topology.backbones import abilene_network
from repro.traffic.fortz_thorup_tm import abilene_traffic_matrix


@pytest.fixture(scope="module")
def abilene_instance():
    net = abilene_network()
    tm = abilene_traffic_matrix(net, total_volume=0.1 * net.total_capacity(), seed=7)
    return net, tm


def mixed_scenarios(net):
    """Demand-only scenarios interleaved with failures and an empty workload."""
    return (
        uniform_scaling_ensemble([0.5, 1.0, 1.5])
        + single_link_failures(net)[:2]
        + uniform_scaling_ensemble([0.0, 2.0])  # 0.0 -> empty-workload shortcut
    )


class TestBatchedPathIsInvisible:
    def test_batched_rows_match_per_cell_oracle(self, abilene_instance):
        net, tm = abilene_instance
        scenarios = mixed_scenarios(net)
        spec = ProtocolSpec.of("OSPF")
        batched = evaluate_scenarios(net, tm, scenarios, spec)
        oracle = [evaluate_scenario(net, tm, s, spec) for s in scenarios]
        assert [r.as_row() for r in batched] == [r.as_row() for r in oracle]

    def test_perturbs_topology_classifier(self, abilene_instance):
        net, _ = abilene_instance
        assert not baseline_scenario().perturbs_topology()
        assert not uniform_scaling_ensemble([2.0])[0].perturbs_topology()
        assert single_link_failures(net)[0].perturbs_topology()
        capacity = Scenario(
            scenario_id="cap", kind="capacity", capacity_factors=((net.edges[0], 0.5),)
        )
        assert capacity.perturbs_topology()

    def test_runner_serial_uses_batched_path_same_results(self, abilene_instance):
        """BatchRunner output is unchanged by the grouped serial dispatch."""
        net, tm = abilene_instance
        scenarios = mixed_scenarios(net)
        results = BatchRunner(cache_dir=False, max_workers=0).run(
            net, tm, scenarios, ["OSPF", "MinHopOSPF"]
        )
        spec_rows = [r.as_row() for r in results]
        oracle = [
            evaluate_scenario(net, tm, s, ProtocolSpec.of(p)).as_row()
            for p in ("OSPF", "MinHopOSPF")
            for s in scenarios
        ]
        assert spec_rows == oracle

    def test_non_batchable_protocol_falls_back(self, abilene_instance):
        """A protocol without batch support routes every cell individually."""
        net, tm = abilene_instance

        calls = []

        class Counting(RoutingProtocol):
            name = "Counting"

            def route(self, network, demands):
                calls.append(demands.total_volume())
                from repro.protocols.ospf import OSPF

                return OSPF().route(network, demands)

        register_protocol("_Counting", Counting)
        try:
            scenarios = uniform_scaling_ensemble([0.5, 1.0, 1.5])
            results = evaluate_scenarios(net, tm, scenarios, ProtocolSpec.of("_Counting"))
            assert len(results) == 3 and all(r.error is None for r in results)
            assert len(calls) == 3  # per-cell, no batching
        finally:
            PROTOCOL_REGISTRY.pop("_Counting", None)

    def test_wrong_shaped_batch_return_falls_back_to_per_cell(self, abilene_instance):
        """A malformed batch_link_loads return degrades gracefully, per cell."""
        net, tm = abilene_instance

        class WrongShape(RoutingProtocol):
            name = "WrongShape"

            def route(self, network, demands):
                from repro.protocols.ospf import OSPF

                return OSPF().route(network, demands)

            def batch_link_loads(self, network, matrices):
                return np.zeros((1, 2))  # bogus shape, never (m, num_links)

        register_protocol("_WrongShape", WrongShape)
        try:
            scenarios = uniform_scaling_ensemble([0.5, 1.0, 1.5])
            results = evaluate_scenarios(net, tm, scenarios, ProtocolSpec.of("_WrongShape"))
            assert all(r.error is None for r in results)
            oracle = [
                evaluate_scenario(net, tm, s, ProtocolSpec.of("OSPF")).mlu for s in scenarios
            ]
            assert [r.mlu for r in results] == pytest.approx(oracle)
        finally:
            PROTOCOL_REGISTRY.pop("_WrongShape", None)

    def test_batch_exception_falls_back_to_per_cell(self, abilene_instance):
        """A batch-path crash degrades to per-cell evaluation, not an error."""
        net, tm = abilene_instance

        class BrokenBatch(RoutingProtocol):
            name = "BrokenBatch"

            def route(self, network, demands):
                from repro.protocols.ospf import OSPF

                return OSPF().route(network, demands)

            def batch_link_loads(self, network, matrices):
                raise RuntimeError("batch kernel exploded")

        register_protocol("_BrokenBatch", BrokenBatch)
        try:
            scenarios = uniform_scaling_ensemble([0.5, 1.0, 1.5])
            results = evaluate_scenarios(net, tm, scenarios, ProtocolSpec.of("_BrokenBatch"))
            assert all(r.error is None for r in results)
            oracle = [
                evaluate_scenario(net, tm, s, ProtocolSpec.of("OSPF")).mlu for s in scenarios
            ]
            assert [r.mlu for r in results] == pytest.approx(oracle)
        finally:
            PROTOCOL_REGISTRY.pop("_BrokenBatch", None)


class TestErrorPaths:
    def test_worker_exception_surfaces_as_per_cell_error(self, abilene_instance):
        """A protocol that cannot even be built fails per cell -- in workers too.

        ``FortzThorup(max_weight=0)`` passes spec construction but raises at
        build time inside the (sub)process; every cell must report the error
        and the run itself must not raise.
        """
        net, tm = abilene_instance
        scenarios = [baseline_scenario()] + uniform_scaling_ensemble([0.5, 1.5])
        for workers in (0, 2):
            runner = BatchRunner(cache_dir=False, max_workers=workers, chunk_size=2)
            results = runner.run(
                net, tm, scenarios, [ProtocolSpec.of("FortzThorup", max_weight=0)]
            )
            assert len(results) == len(scenarios)
            for result in results:
                assert not result.feasible
                assert result.mlu == float("inf")
                assert "max_weight" in result.error

    def test_one_bad_cell_does_not_sink_a_parallel_sweep(self, abilene_instance):
        """An inapplicable scenario errors alone; sibling cells stay healthy."""
        net, tm = abilene_instance
        foreign = Scenario(
            scenario_id="foreign", kind="link-failure", failed_links=((1, 99),)
        )
        scenarios = uniform_scaling_ensemble([0.5, 1.0]) + [foreign]
        results = BatchRunner(cache_dir=False, max_workers=2, chunk_size=1).run(
            net, tm, scenarios, ["OSPF"]
        )
        assert [r.error is None for r in results] == [True, True, False]
        assert "unknown link" in results[2].error

    def test_cache_never_stores_error_results(self, tmp_path, abilene_instance):
        """After a sweep with failures, only clean cells are on disk."""
        net, tm = abilene_instance
        foreign = Scenario(
            scenario_id="foreign", kind="link-failure", failed_links=((1, 99),)
        )
        scenarios = [baseline_scenario(), foreign]
        runner = BatchRunner(cache_dir=tmp_path, max_workers=0)
        first = runner.run(net, tm, scenarios, ["OSPF"])
        assert first[0].error is None and first[1].error is not None
        assert len(runner.cache) == 1  # only the clean cell was persisted
        # A second sweep serves the clean cell from cache and re-evaluates
        # (not "serves stale error for") the broken one.
        second = runner.run(net, tm, scenarios, ["OSPF"])
        assert second[0].cached and not second[1].cached
        assert runner.last_stats.cache_hits == 1
        assert runner.last_stats.evaluated == 1

    def test_batched_cells_are_cached_like_per_cell_ones(self, tmp_path, abilene_instance):
        """Results produced by the batched path hit the cache on the next run."""
        net, tm = abilene_instance
        scenarios = uniform_scaling_ensemble([0.5, 1.0, 1.5])
        runner = BatchRunner(cache_dir=tmp_path, max_workers=0)
        fresh = runner.run(net, tm, scenarios, ["OSPF"])
        warm = runner.run(net, tm, scenarios, ["OSPF"])
        assert runner.last_stats.hit_rate == 1.0
        assert [r.as_row() for r in warm] == [r.as_row() for r in fresh]


class TestBatchLinkLoadsContract:
    def test_ospf_batch_matches_individual_routes(self, abilene_instance):
        net, tm = abilene_instance
        from repro.protocols.ospf import OSPF

        protocol = OSPF()
        matrices = [tm.scaled(f) for f in (0.25, 1.0, 1.75)]
        loads = protocol.batch_link_loads(net, matrices)
        assert loads.shape == (3, net.num_links)
        for row, matrix in zip(loads, matrices, strict=True):
            np.testing.assert_allclose(
                row, protocol.route(net, matrix).aggregate(), atol=1e-9, rtol=0
            )

    def test_python_backend_ospf_declines_batching(self, abilene_instance):
        net, tm = abilene_instance
        from repro.protocols.ospf import OSPF

        assert OSPF(backend="python").batch_link_loads(net, [tm]) is None

    def test_base_protocol_declines_batching(self, abilene_instance):
        net, tm = abilene_instance

        class Minimal(RoutingProtocol):
            def route(self, network, demands):  # pragma: no cover - not called
                raise NotImplementedError

        assert Minimal().batch_link_loads(net, [tm]) is None
