"""The span-timing history and statistical perf-regression gate.

The gate's contract, pinned with synthetic store runs (deterministic
numbers, no real timing):

* a genuine 2x slowdown against a stable history is flagged;
* an unmodified re-run (head inside the noise band) passes;
* with a single baseline run (CI's ``latest~1`` case) the MAD is zero and
  the absolute/relative floors alone carry the noise allowance;
* spans without history are *new* (informational), spans that disappeared
  are *vanished* (informational) — neither fails the gate;
* untraced runs cannot be gated (:class:`PerfError`), and the CLI maps
  gate outcomes to exit codes 0/1.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.results import PerfError, ResultsStore, gate, profile_rows
from repro.results.manifest import RunManifest

TOPOLOGY = "Abilene"


def _profile_record(span: str, self_seconds: float) -> dict:
    return {
        "scenario": "__profile__",
        "kind": "profile",
        "protocol": "*",
        "topology": TOPOLOGY,
        "workload": span,
        "span": span,
        "count": 4,
        "wall_seconds": self_seconds * 1.25,
        "cpu_seconds": self_seconds,
        "self_seconds": self_seconds,
        "self_p50_seconds": self_seconds / 4,
        "self_p95_seconds": self_seconds / 2,
        "self_max_seconds": self_seconds / 2,
    }


def _record_run(store, stamp: str, spans: dict, sha: str = "cafe0000") -> str:
    """One synthetic traced sweep: ``spans`` maps span name -> self seconds."""
    manifest = RunManifest(
        run_id=f"run-{stamp}",
        kind="sweep",
        created_at=f"2026-08-01T{stamp}Z",
        git_sha=sha,
        topology=TOPOLOGY,
    )
    records = [
        {"scenario": "baseline", "protocol": "ospf", "topology": TOPOLOGY, "mlu": 0.5},
    ] + [_profile_record(span, value) for span, value in spans.items()]
    return store.record_run(manifest, records)


@pytest.fixture
def store(tmp_path):
    with ResultsStore(tmp_path / "results.sqlite") as s:
        yield s


@pytest.fixture
def history(store):
    """Five baseline runs with ~0.100s self time (deterministic jitter)."""
    jitters = (0.100, 0.102, 0.098, 0.101, 0.099)
    for index, value in enumerate(jitters):
        _record_run(
            store,
            f"00:0{index}:00",
            {"controller.cell": value, "dspt.update": value / 10},
        )
    return store


def test_gate_flags_synthetic_2x_slowdown(history):
    head = _record_run(
        history, "01:00:00", {"controller.cell": 0.200, "dspt.update": 0.010}
    )
    report = gate(history, "latest~1", head)
    assert not report.ok
    (regressed,) = report.regressions
    assert regressed.span == "controller.cell"
    assert regressed.head == pytest.approx(0.200)
    assert regressed.baseline_median == pytest.approx(0.100)
    assert regressed.samples == 5
    # The small span moved 2x too but sits under the absolute floor.
    assert {v.span for v in report.verdicts if not v.regressed} == {"dspt.update"}
    assert "1 regression(s)" in report.summary()


def test_gate_passes_unmodified_rerun(history):
    head = _record_run(
        history, "01:00:00", {"controller.cell": 0.101, "dspt.update": 0.010}
    )
    report = gate(history, "latest~1", head)
    assert report.ok and not report.regressions
    assert len(report.verdicts) == 2
    assert not report.new_spans and not report.vanished_spans


def test_gate_single_baseline_floors_carry_the_band(store):
    """CI gates latest~1..latest: one baseline run, MAD = 0."""
    _record_run(store, "00:00:00", {"controller.cell": 0.100})
    head = _record_run(store, "01:00:00", {"controller.cell": 0.149})
    report = gate(store, "latest~1", head, rel_floor=0.5)
    (verdict,) = report.verdicts
    assert verdict.mad == 0.0
    assert verdict.threshold == pytest.approx(0.150)  # median + 0.5*median
    assert report.ok
    # Past the relative floor the same setup fails.
    over = _record_run(store, "02:00:00", {"controller.cell": 0.151})
    assert not gate(store, "latest~2", over, rel_floor=0.5).ok


def test_gate_new_and_vanished_spans_are_informational(history):
    head = _record_run(history, "01:00:00", {"controller.cell": 0.100, "fresh.span": 9.0})
    report = gate(history, "latest~1", head)
    assert report.ok  # a 9-second *new* span never fails the gate
    assert report.new_spans == ["fresh.span"]
    assert report.vanished_spans == ["dspt.update"]
    assert "fresh.span" in report.summary()


def test_gate_rejects_untraced_runs(store, history):
    untraced = RunManifest(
        run_id="run-untraced",
        kind="sweep",
        created_at="2026-08-01T02:00:00Z",
        git_sha="cafe0000",
        topology=TOPOLOGY,
    )
    store.record_run(untraced, [{"scenario": "baseline", "protocol": "ospf",
                                 "topology": TOPOLOGY, "mlu": 0.5}])
    with pytest.raises(PerfError, match="no '__profile__' records"):
        gate(store, "latest~1", "run-untraced")
    with pytest.raises(PerfError, match="window must be >= 1"):
        gate(store, "latest~1", "latest", window=0)


def test_gate_requires_profiled_baselines(store):
    for stamp in ("00:00:00", "00:01:00"):
        manifest = RunManifest(
            run_id=f"run-plain-{stamp}",
            kind="sweep",
            created_at=f"2026-08-01T{stamp}Z",
            git_sha="cafe0000",
            topology=TOPOLOGY,
        )
        store.record_run(manifest, [{"scenario": "baseline", "protocol": "ospf",
                                     "topology": TOPOLOGY, "mlu": 0.5}])
    head = _record_run(store, "01:00:00", {"controller.cell": 0.1})
    with pytest.raises(PerfError, match="nothing to gate against"):
        gate(store, "latest~1", head, window=2)


def test_profile_rows_filters_by_span(history):
    rows = profile_rows(history, span="controller.cell")
    assert len(rows) == 5
    assert all(row["span"] == "controller.cell" for row in rows)
    assert {row["git_sha"] for row in rows} == {"cafe0000"}
    assert profile_rows(history, span="controller.cell", limit=2)[0]["run_id"] \
        == history.runs()[0].run_id  # newest first


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_perf_gate_exit_codes(tmp_path, capsys):
    db = tmp_path / "results.sqlite"
    with ResultsStore(db) as store:
        _record_run(store, "00:00:00", {"controller.cell": 0.100})
        _record_run(store, "01:00:00", {"controller.cell": 0.500})
    assert main(["results", "perf", "--gate", "latest~1..latest",
                 "--store", str(db)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSED" in out and "FAIL: 1 span(s) regressed" in out
    ok_db = tmp_path / "ok.sqlite"
    with ResultsStore(ok_db) as store:
        _record_run(store, "00:00:00", {"controller.cell": 0.100})
        _record_run(store, "01:00:00", {"controller.cell": 0.101})
    assert main(["results", "perf", "--gate", "latest~1..latest",
                 "--store", str(ok_db), "--all"]) == 0
    assert "OK: no span regressed" in capsys.readouterr().out
    # Malformed references are usage errors, not crashes.
    assert main(["results", "perf", "--gate", "latest",
                 "--store", str(db)]) == 2


def test_cli_perf_trend_renders_spans(tmp_path, capsys):
    db = tmp_path / "results.sqlite"
    with ResultsStore(db) as store:
        for index in range(3):
            _record_run(store, f"00:0{index}:00", {"controller.cell": 0.1 + index / 100})
    assert main(["results", "perf", "--span", "controller.cell",
                 "--last", "2", "--store", str(db)]) == 0
    out = capsys.readouterr().out
    assert "controller.cell" in out and "self_seconds" in out


def test_cli_perf_trend_empty_store_is_not_an_error(tmp_path, capsys):
    db = tmp_path / "results.sqlite"
    with ResultsStore(db) as store:
        pass
    assert main(["results", "perf", "--store", str(db)]) == 0
    assert "no '__profile__' records" in capsys.readouterr().out
