"""Unit tests for Algorithm 2 (NEM) and Algorithm 3 (TrafficDistribution)."""

import numpy as np
import pytest

from repro.core.nem import compute_second_weights, nem_dual_objective
from repro.core.objectives import LoadBalanceObjective
from repro.core.te_problem import TEProblem, solve_optimal_te
from repro.core.traffic_distribution import (
    exponential_split_ratios,
    path_weight_sums,
    traffic_distribution,
)
from repro.network.demands import TrafficMatrix
from repro.network.spt import all_shortest_path_dags, shortest_path_dag


class TestPathWeightSums:
    def test_single_path_z_is_exp_of_length(self, line_network):
        dag = shortest_path_dag(line_network, 4, np.ones(3))
        second = np.array([0.5, 1.0, 1.5])
        z_values = path_weight_sums(line_network, dag, second)
        assert z_values[1] == pytest.approx(np.exp(-3.0))
        assert z_values[4] == pytest.approx(1.0)

    def test_diamond_sums_both_paths(self, diamond_network):
        dag = shortest_path_dag(diamond_network, 4, np.ones(4))
        second = diamond_network.weight_vector({(1, 2): 1.0, (2, 4): 0.0, (1, 3): 0.0, (3, 4): 0.0})
        z_values = path_weight_sums(diamond_network, dag, second)
        assert z_values[1] == pytest.approx(np.exp(-1.0) + 1.0)


class TestExponentialSplitRatios:
    def test_zero_weights_split_by_path_count(self, diamond_network):
        dag = shortest_path_dag(diamond_network, 4, np.ones(4))
        ratios = exponential_split_ratios(diamond_network, dag, np.zeros(4))
        assert ratios[1][2] == pytest.approx(0.5)
        assert ratios[1][3] == pytest.approx(0.5)

    def test_ratios_follow_eq22(self, diamond_network):
        dag = shortest_path_dag(diamond_network, 4, np.ones(4))
        second = diamond_network.weight_vector({(1, 2): 1.0, (2, 4): 0.0, (1, 3): 0.0, (3, 4): 0.0})
        ratios = exponential_split_ratios(diamond_network, dag, second)
        expected_2 = np.exp(-1.0) / (np.exp(-1.0) + 1.0)
        assert ratios[1][2] == pytest.approx(expected_2)
        assert ratios[1][3] == pytest.approx(1.0 - expected_2)

    def test_ratios_sum_to_one(self, fig4, fig4_tm):
        weights = np.ones(fig4.num_links)
        dags = all_shortest_path_dags(fig4, fig4_tm.destinations(), weights)
        second = np.linspace(0, 1, fig4.num_links)
        for dag in dags.values():
            ratios = exponential_split_ratios(fig4, dag, second)
            for hops in ratios.values():
                assert sum(hops.values()) == pytest.approx(1.0)

    def test_higher_second_weight_reduces_share(self, diamond_network):
        dag = shortest_path_dag(diamond_network, 4, np.ones(4))
        low = exponential_split_ratios(
            diamond_network, dag, diamond_network.weight_vector({(1, 2): 0.5})
        )
        high = exponential_split_ratios(
            diamond_network, dag, diamond_network.weight_vector({(1, 2): 2.0})
        )
        assert high[1][2] < low[1][2]


class TestTrafficDistribution:
    def test_even_split_with_zero_second_weights(self, diamond_network, diamond_demands):
        dags = all_shortest_path_dags(diamond_network, [4], np.ones(4))
        flows = traffic_distribution(diamond_network, diamond_demands, dags, np.zeros(4))
        assert flows.flow_on(1, 2) == pytest.approx(4.0)
        flows.validate(diamond_demands)

    def test_conservation_on_fig4(self, fig4, fig4_tm):
        weights = np.ones(fig4.num_links)
        dags = all_shortest_path_dags(fig4, fig4_tm.destinations(), weights)
        flows = traffic_distribution(fig4, fig4_tm, dags, np.zeros(fig4.num_links))
        assert flows.conservation_violation(fig4_tm) < 1e-9

    def test_second_weights_shift_traffic(self, diamond_network, diamond_demands):
        dags = all_shortest_path_dags(diamond_network, [4], np.ones(4))
        second = diamond_network.weight_vector({(1, 2): 3.0})
        flows = traffic_distribution(diamond_network, diamond_demands, dags, second)
        assert flows.flow_on(1, 2) < flows.flow_on(1, 3)

    def test_bad_weight_shape_rejected(self, diamond_network, diamond_demands):
        dags = all_shortest_path_dags(diamond_network, [4], np.ones(4))
        with pytest.raises(ValueError):
            traffic_distribution(diamond_network, diamond_demands, dags, np.zeros(2))


class TestAlgorithm2:
    def _setup(self, network, demands, beta=1.0):
        objective = LoadBalanceObjective(beta=beta)
        solution = solve_optimal_te(TEProblem(network, demands, objective))
        weights = solution.link_weights
        tolerance = 0.05 * float(np.mean(weights[weights > 0]))
        dags = all_shortest_path_dags(network, demands.destinations(), weights, tolerance)
        return solution, dags

    def test_realises_optimal_flows_on_diamond(self, diamond_network, diamond_demands):
        solution, dags = self._setup(diamond_network, diamond_demands)
        result = compute_second_weights(
            diamond_network,
            diamond_demands,
            dags,
            solution.flows.aggregate(),
            max_iterations=300,
        )
        assert result.converged
        assert np.allclose(
            result.flows.aggregate(), solution.flows.aggregate(), atol=0.05 * 8.0
        )

    def test_weights_nonnegative(self, fig4, fig4_tm):
        solution, dags = self._setup(fig4, fig4_tm)
        result = compute_second_weights(
            fig4, fig4_tm, dags, solution.flows.aggregate(), max_iterations=200
        )
        assert np.all(result.weights >= 0)

    def test_flows_do_not_exceed_target_much(self, fig4, fig4_tm):
        solution, dags = self._setup(fig4, fig4_tm)
        target = solution.flows.aggregate()
        result = compute_second_weights(fig4, fig4_tm, dags, target, max_iterations=500)
        excess = result.flows.aggregate() - target
        assert float(np.max(excess)) <= 0.05 * float(np.max(target)) + 1e-6

    def test_dual_history_recorded(self, diamond_network, diamond_demands):
        solution, dags = self._setup(diamond_network, diamond_demands)
        # Force the target away from the zero-weight split so that the
        # algorithm actually iterates.
        target = solution.flows.aggregate() * 0.9
        result = compute_second_weights(
            diamond_network,
            diamond_demands,
            dags,
            target,
            max_iterations=50,
            tolerance=0.0,
            record_history=True,
        )
        assert 1 <= len(result.dual_objective_history) <= 50
        assert all(np.isfinite(v) for v in result.dual_objective_history)

    def test_zero_initial_weights_default(self, diamond_network, diamond_demands):
        solution, dags = self._setup(diamond_network, diamond_demands)
        result = compute_second_weights(
            diamond_network, diamond_demands, dags, solution.flows.aggregate(), max_iterations=1,
            tolerance=1e9,
        )
        # With a huge tolerance the loop exits immediately and v stays 0.
        assert np.allclose(result.weights, 0.0)

    def test_bad_target_shape_rejected(self, diamond_network, diamond_demands):
        solution, dags = self._setup(diamond_network, diamond_demands)
        with pytest.raises(ValueError):
            compute_second_weights(diamond_network, diamond_demands, dags, np.zeros(2))

    def test_dual_objective_value(self, diamond_network, diamond_demands):
        solution, dags = self._setup(diamond_network, diamond_demands)
        value = nem_dual_objective(
            diamond_network,
            diamond_demands,
            dags,
            np.zeros(4),
            solution.flows.aggregate(),
        )
        # With v = 0 the dual equals sum_r (d_r / total) * log(#paths) = log 2.
        assert value == pytest.approx(np.log(2.0))

    def test_dual_objective_empty_demands(self, diamond_network):
        assert nem_dual_objective(diamond_network, TrafficMatrix(), {}, np.zeros(4), np.zeros(4)) == 0.0
