"""Results store: manifests, round trips, diffs and bench views."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.results import (
    ResultsStore,
    ResultsStoreError,
    RunManifest,
    classify_field,
    flatten_record,
    load_bench_view,
    scenario_set_fingerprint,
)
from repro.scenarios import BatchRunner, single_link_failures
from repro.topology.backbones import abilene_network
from repro.traffic.fortz_thorup_tm import abilene_traffic_matrix

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def store(tmp_path) -> ResultsStore:
    with ResultsStore(tmp_path / "results.sqlite") as handle:
        yield handle


def _bench_manifest(smoke: bool = False, benchmark: str = "routing-backend") -> RunManifest:
    return RunManifest.create(
        kind="bench",
        benchmark=benchmark,
        config={
            "full_bench": False,
            "smoke_bench": smoke,
            "view_flags": {"full_bench": False},
        },
    )


RECORDS = [
    {
        "topology": "abilene",
        "workload": "split-ratio",
        "nodes": 11,
        "links": 28,
        "matrices": 240,
        "python_seconds": 0.07,
        "sparse_seconds": 0.012,
        "speedup": 5.64,
        "max_abs_load_diff": 1.8e-15,
    },
    {
        "topology": "rocketfuel",
        "workload": "split-ratio",
        "nodes": 52,
        "links": 168,
        "matrices": 40,
        "python_seconds": 0.28,
        "sparse_seconds": 0.07,
        "speedup": 3.9,
        "max_abs_load_diff": 1.8e-15,
    },
]


# ----------------------------------------------------------------------
# write -> query -> aggregate round trip
# ----------------------------------------------------------------------
def test_record_query_roundtrip(store):
    run_id = store.record_run(_bench_manifest(), RECORDS)
    manifest = store.get_run(run_id)
    assert manifest.kind == "bench"
    assert manifest.benchmark == "routing-backend"
    assert manifest.package_version
    assert manifest.cache_version is not None

    assert store.records(run_id) == RECORDS  # insertion order preserved

    rows = store.query(benchmark="routing-backend", workload="split-ratio")
    assert len(rows) == 2
    assert rows[0]["run_id"] == run_id
    assert rows[0]["speedup"] == 5.64

    only_abilene = store.query(topology="abilene")
    assert len(only_abilene) == 1 and only_abilene[0]["nodes"] == 11


def test_aggregate_groups_and_stats(store):
    store.record_run(_bench_manifest(), RECORDS)
    agg = store.aggregate("speedup", by=("workload",), benchmark="routing-backend")
    assert len(agg) == 1
    row = agg[0]
    assert row["workload"] == "split-ratio"
    assert row["rows"] == 2
    assert row["min_speedup"] == 3.9
    assert row["max_speedup"] == 5.64
    assert row["mean_speedup"] == pytest.approx((3.9 + 5.64) / 2)


def test_run_resolution(store):
    first = store.record_run(_bench_manifest(), RECORDS[:1])
    second = store.record_run(_bench_manifest(benchmark="online-controller"), RECORDS[1:])

    assert store.get_run("latest").run_id == second
    assert store.get_run("latest:routing-backend").run_id == first
    assert store.get_run("latest:bench").run_id == second  # kind fallback
    assert store.get_run(first[:12] if first[:12] != second[:12] else first).run_id == first
    with pytest.raises(ResultsStoreError):
        store.get_run("no-such-run")
    with pytest.raises(ResultsStoreError):
        ResultsStore(store.path).get_run("latest:nope")


def test_run_resolution_ancestry(store):
    """``latest~N`` walks back N runs, git-style, within the selected family."""
    first = store.record_run(_bench_manifest(), RECORDS[:1])
    second = store.record_run(_bench_manifest(), RECORDS[:1])
    other = store.record_run(_bench_manifest(benchmark="online-controller"), RECORDS[1:])

    assert store.get_run("latest~0").run_id == other
    assert store.get_run("latest~1").run_id == second
    assert store.get_run("latest~2").run_id == first
    # Scoped ancestry: the previous run *of the same benchmark*, so CI can
    # diff consecutive sweeps.
    assert store.get_run("latest~1:routing-backend").run_id == first
    assert store.get_run("latest~0:online-controller").run_id == other
    with pytest.raises(ResultsStoreError):
        store.get_run("latest~3")  # only three runs exist
    with pytest.raises(ResultsStoreError):
        store.get_run("latest~1:online-controller")  # no earlier run
    with pytest.raises(ResultsStoreError):
        store.get_run("latest~x")  # malformed back-count


def test_delete_run_cascades(store):
    run_id = store.record_run(_bench_manifest(), RECORDS)
    assert store.delete_run(run_id) == run_id
    assert store.runs() == []
    with pytest.raises(ResultsStoreError):
        store.records(run_id)


def test_gc_retains_newest_per_family(store):
    routing = [store.record_run(_bench_manifest(), RECORDS[:1]) for _ in range(3)]
    online = store.record_run(
        _bench_manifest(benchmark="online-controller"), RECORDS[1:]
    )
    deleted = store.gc(keep_last=1)
    # The two oldest routing-backend runs go; the lone online run survives.
    assert sorted(deleted) == sorted(routing[:2])
    assert [m.run_id for m in store.runs(benchmark="routing-backend")] == [routing[-1]]
    assert [m.run_id for m in store.runs(benchmark="online-controller")] == [online]
    # Records cascade with their runs.
    with pytest.raises(ResultsStoreError):
        store.records(routing[0])
    assert store.gc(keep_last=1) == []
    with pytest.raises(ResultsStoreError):
        store.gc(keep_last=-1)


def test_gc_filters_by_family(store):
    routing = [store.record_run(_bench_manifest(), RECORDS[:1]) for _ in range(2)]
    online = [
        store.record_run(_bench_manifest(benchmark="online-controller"), RECORDS[1:])
        for _ in range(2)
    ]
    deleted = store.gc(keep_last=1, benchmark="online-controller")
    assert deleted == [online[0]]
    assert len(store.runs(benchmark="routing-backend")) == len(routing)


# ----------------------------------------------------------------------
# BatchRunner integration
# ----------------------------------------------------------------------
def test_batch_runner_records_manifested_run(store):
    network = abilene_network()
    demands = abilene_traffic_matrix(network, total_volume=50.0, seed=1)
    scenarios = single_link_failures(network)[:4]
    runner = BatchRunner(cache_dir=False, max_workers=0, results_store=store)
    results = runner.run(
        network, demands, scenarios, ["OSPF"], record_config={"source": "unit-test"}
    )

    assert runner.last_run_id is not None
    manifest = store.get_run(runner.last_run_id)
    assert manifest.kind == "sweep"
    assert manifest.topology == network.name
    assert manifest.protocols == ("OSPF",)
    assert manifest.scenario_set == scenario_set_fingerprint(scenarios)
    assert manifest.config["scenarios"] == 4
    assert manifest.config["source"] == "unit-test"
    assert manifest.timings["elapsed"] >= 0.0

    records = store.records(runner.last_run_id)
    assert len(records) == len(results) == 4
    assert [r["scenario"] for r in records] == [s.scenario_id for s in scenarios]
    assert records[0]["mlu"] == pytest.approx(results[0].mlu, rel=1e-6)

    # Records carry the topology so query(topology=...) works for sweeps.
    rows = store.query(kind="sweep", topology=network.name)
    assert len(rows) == 4


def test_batch_runner_accepts_store_path(tmp_path):
    network = abilene_network()
    demands = abilene_traffic_matrix(network, total_volume=50.0, seed=1)
    runner = BatchRunner(
        cache_dir=False, max_workers=0, results_store=tmp_path / "sweeps.sqlite"
    )
    runner.run(network, demands, single_link_failures(network)[:2], ["OSPF"])
    with ResultsStore(tmp_path / "sweeps.sqlite") as store:
        assert len(store.runs(kind="sweep")) == 1
        assert len(store.records(runner.last_run_id)) == 2


# ----------------------------------------------------------------------
# diffs
# ----------------------------------------------------------------------
def test_diff_identical_runs_is_clean(store):
    a = store.record_run(_bench_manifest(), RECORDS)
    b = store.record_run(_bench_manifest(), RECORDS)
    diff = store.diff(a, b)
    assert diff.ok
    assert diff.comparable
    assert diff.mismatches == []
    assert not diff.only_in_a and not diff.only_in_b


def test_diff_metric_mismatch_is_hard_but_timing_is_not(store):
    a = store.record_run(_bench_manifest(), RECORDS)
    moved = json.loads(json.dumps(RECORDS))
    moved[0]["python_seconds"] = 9.9  # timing: informational
    moved[0]["max_abs_load_diff"] = 0.5  # residual metric: hard
    b = store.record_run(_bench_manifest(), moved)

    diff = store.diff(a, b)
    assert not diff.ok
    failing = {entry.key for entry in diff.hard_mismatches}
    assert failing == {"max_abs_load_diff"}
    drifting = {entry.key for entry in diff.mismatches} - failing
    assert "python_seconds" in drifting


def test_diff_downgrades_values_when_workload_flags_differ(store):
    full = store.record_run(_bench_manifest(smoke=False), [{**RECORDS[0], "cost": 100.0}])
    smoke_records = [{**RECORDS[0], "matrices": 12, "cost": 140.0, "max_abs_load_diff": 3e-16}]
    smoke = store.record_run(_bench_manifest(smoke=True), smoke_records)

    diff = store.diff(full, smoke)
    assert not diff.comparable
    # The cost moved 40% but the workloads are incomparable: informational.
    assert diff.ok
    assert any(e.key == "cost" and not e.matches and not e.hard for e in diff.entries)

    # A residual blowing up stays a hard failure even across smoke/full.
    broken = store.record_run(
        _bench_manifest(smoke=True), [{**smoke_records[0], "max_abs_load_diff": 0.25}]
    )
    assert not store.diff(full, broken).ok


def test_diff_reports_unmatched_records_and_fails(store):
    a = store.record_run(_bench_manifest(), RECORDS)
    b = store.record_run(_bench_manifest(), RECORDS[:1])
    diff = store.diff(a, b)
    assert diff.only_in_a == ["rocketfuel/split-ratio"]
    assert diff.only_in_b == []
    # A vanished record must not slip through the gate as "nothing failed".
    assert not diff.ok


def test_nonfinite_metrics_are_stored_as_json_safe_strings(store):
    run_id = store.record_run(
        _bench_manifest(),
        [{**RECORDS[0], "mlu": float("inf"), "utility": float("-inf"), "gap": float("nan")}],
    )
    (record,) = store.records(run_id)
    assert record["mlu"] == "Infinity"
    assert record["utility"] == "-Infinity"
    assert record["gap"] == "NaN"
    # The strings survive strict JSON and compare exactly across runs.
    json.loads(json.dumps(store.query(run=run_id)))
    other = store.record_run(_bench_manifest(), [{**RECORDS[0], "mlu": float("inf")}])
    assert not any(e.key == "mlu" and not e.matches for e in store.diff(run_id, other).entries)


def test_field_classification():
    assert classify_field("sparse_seconds") == "timing"
    assert classify_field("speedup_vs_sparse_rebuild") == "timing"
    assert classify_field("warm_evaluations") == "timing"
    assert classify_field("cached") == "timing"
    assert classify_field("matrices") == "shape"
    assert classify_field("dspt.full_rebuilds") == "shape"
    assert classify_field("mlu") == "metric"
    assert classify_field("max_abs_load_diff") == "metric"
    assert flatten_record({"a": {"b": 1}, "c": 2}) == {"a.b": 1, "c": 2}


# ----------------------------------------------------------------------
# bench views: the committed BENCH_*.json files are store exports
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    # NB: the second parameter must not be called "benchmark" — that name is
    # pytest-benchmark's fixture, and parametrizing over it breaks the plugin.
    "filename,bench_name",
    [("BENCH_routing.json", "routing-backend"), ("BENCH_online.json", "online-controller")],
)
def test_committed_views_roundtrip_byte_identical(store, filename, bench_name):
    """import -> export reproduces the committed artifact byte-for-byte."""
    path = REPO_ROOT / filename
    run_id = store.import_bench_view(path)
    manifest = store.get_run(run_id)
    assert manifest.kind == "view-import"
    assert manifest.benchmark == bench_name
    assert store.export_bench_view(bench_name, run=run_id) == path.read_text()


def test_export_is_byte_stable_across_reexports(store, tmp_path):
    source = REPO_ROOT / "BENCH_routing.json"
    first = store.import_bench_view(source)
    exported = tmp_path / "view.json"
    store.export_bench_view("routing-backend", run=first, path=exported)

    second = store.import_bench_view(exported)
    re_exported = store.export_bench_view("routing-backend", run=second)
    assert re_exported == exported.read_text() == source.read_text()

    # ...and the two imported runs are identical under diff.
    assert store.diff(first, second).ok


def test_export_rejects_benchmark_mismatch_and_missing_runs(store, tmp_path):
    run_id = store.import_bench_view(REPO_ROOT / "BENCH_routing.json")
    with pytest.raises(ResultsStoreError):
        store.export_bench_view("online-controller", run=run_id)
    with pytest.raises(ResultsStoreError):
        store.export_bench_view("online-controller")  # nothing recorded

    bad = tmp_path / "not-a-view.json"
    bad.write_text(json.dumps({"hello": "world"}))
    with pytest.raises(ResultsStoreError):
        load_bench_view(bad)
