"""Unit tests for the metrics package (utilization, load balance, path diversity)."""

import numpy as np
import pytest

from repro.core.objectives import LoadBalanceObjective
from repro.core.te_problem import TEProblem, solve_optimal_te
from repro.metrics.load_balance import (
    alternative_routings,
    is_min_max_balanced,
    is_qbeta_balanced,
    minimizes_mlu,
    perturbed_distributions,
    proportional_balance_score,
)
from repro.metrics.paths import (
    average_path_diversity,
    equal_cost_path_counts,
    equal_cost_path_histogram,
    histogram_from_dags,
    multipath_pairs,
    used_link_count,
)
from repro.metrics.utilization import (
    UtilizationSummary,
    load_imbalance,
    max_link_utilization,
    overloaded_links,
    sorted_link_utilizations,
    underutilized_links,
    utilization_percentiles,
)
from repro.network.flows import FlowAssignment
from repro.protocols.ospf import invcap_weights
from repro.solvers.assignment import ecmp_assignment


@pytest.fixture
def uneven_flows(diamond_network):
    flows = FlowAssignment(network=diamond_network)
    flows.add_path_flow(4, [1, 2, 4], 9.0)
    flows.add_path_flow(4, [1, 3, 4], 1.0)
    return flows


class TestUtilizationMetrics:
    def test_mlu(self, uneven_flows):
        assert max_link_utilization(uneven_flows) == pytest.approx(0.9)

    def test_sorted_utilizations(self, uneven_flows):
        values = sorted_link_utilizations(uneven_flows)
        assert values[0] == pytest.approx(0.9)
        assert values[-1] == pytest.approx(0.1)

    def test_percentiles(self, uneven_flows):
        percentiles = utilization_percentiles(uneven_flows, (0.0, 100.0))
        assert percentiles[0.0] == pytest.approx(0.1)
        assert percentiles[100.0] == pytest.approx(0.9)

    def test_overloaded_and_underutilized(self, diamond_network):
        flows = FlowAssignment(network=diamond_network)
        flows.add_path_flow(4, [1, 2, 4], 10.0)
        assert set(overloaded_links(flows)) == {(1, 2), (2, 4)}
        assert set(underutilized_links(flows)) == {(1, 3), (3, 4)}

    def test_load_imbalance(self, uneven_flows, diamond_network):
        balanced = FlowAssignment(network=diamond_network)
        balanced.add_path_flow(4, [1, 2, 4], 5.0)
        balanced.add_path_flow(4, [1, 3, 4], 5.0)
        assert load_imbalance(balanced) == pytest.approx(0.0)
        assert load_imbalance(uneven_flows) > 0.5

    def test_summary(self, uneven_flows):
        summary = UtilizationSummary.of(uneven_flows)
        assert summary.mlu == pytest.approx(0.9)
        assert summary.overloaded == 0
        assert summary.underutilized == 0  # threshold 0.1 is not strict


class TestLoadBalanceCriteria:
    def test_optimal_proportional_distribution_passes(self, fig1, fig1_tm):
        solution = solve_optimal_te(TEProblem(fig1, fig1_tm, LoadBalanceObjective.proportional()))
        candidate = solution.flows
        alternatives = [
            ecmp_assignment(fig1, fig1_tm, np.ones(4)),
            *alternative_routings(fig1, fig1_tm, count=3, seed=1),
        ]
        assert is_qbeta_balanced(candidate, alternatives, beta=1.0, tolerance=1e-4)

    def test_suboptimal_distribution_fails(self, fig1, fig1_tm):
        # Sending everything over the direct link is not proportionally
        # balanced: the optimal distribution strictly improves Eq. (4).
        direct = ecmp_assignment(fig1, fig1_tm, np.ones(4))
        optimal = solve_optimal_te(
            TEProblem(fig1, fig1_tm, LoadBalanceObjective.proportional())
        ).flows
        score = proportional_balance_score(direct, optimal, beta=1.0)
        assert score > 0

    def test_min_max_criterion(self, fig1, fig1_tm):
        from repro.protocols.minmax_mlu import MinMaxMLU

        candidate = MinMaxMLU().route(fig1, fig1_tm)
        alternatives = [ecmp_assignment(fig1, fig1_tm, np.ones(4))]
        assert minimizes_mlu(candidate, alternatives)
        assert is_min_max_balanced(candidate, alternatives)

    def test_minimizes_mlu_fails_for_bad_candidate(self, fig1, fig1_tm):
        from repro.protocols.minmax_mlu import MinMaxMLU

        bad = ecmp_assignment(fig1, fig1_tm, np.ones(4))  # MLU 1.0
        good = MinMaxMLU().route(fig1, fig1_tm)  # MLU 0.9
        assert not minimizes_mlu(bad, [good])

    def test_perturbed_distributions_are_feasible(self, uneven_flows):
        for alternative in perturbed_distributions(uneven_flows, (0.1, 0.5)):
            assert alternative.is_capacity_feasible()
        assert perturbed_distributions(uneven_flows, (1.5,)) == []


class TestPathDiversity:
    def test_equal_cost_path_counts(self, diamond_network):
        counts = equal_cost_path_counts(diamond_network, np.ones(4))
        assert counts[(1, 4)] == 2
        assert counts[(2, 4)] == 1
        assert counts[(4, 1)] == 0  # unreachable

    def test_histogram(self, diamond_network):
        histogram = equal_cost_path_histogram(diamond_network, np.ones(4))
        assert sum(histogram.values()) == 12  # all ordered pairs
        assert histogram[2] == 1  # only (1, 4) has two paths
        assert multipath_pairs(histogram) == 1

    def test_histogram_from_dags_matches(self, diamond_network):
        from repro.network.spt import all_shortest_path_dags

        dags = all_shortest_path_dags(diamond_network, list(diamond_network.nodes), np.ones(4))
        direct = equal_cost_path_histogram(diamond_network, np.ones(4))
        via_dags = histogram_from_dags(dags, diamond_network)
        assert direct == via_dags

    def test_average_path_diversity(self, diamond_network):
        assert average_path_diversity(diamond_network, np.ones(4)) > 0

    def test_max_paths_bucketing(self, diamond_network):
        histogram = equal_cost_path_histogram(diamond_network, np.ones(4), max_paths=1)
        assert set(histogram) <= {0, 1}

    def test_used_link_count(self):
        assert used_link_count({(1, 2): 0.5, (2, 3): 0.0, (3, 4): 1e-9}) == 1

    def test_ospf_abilene_invcap_has_unit_paths_mostly(self, abilene):
        histogram = equal_cost_path_histogram(abilene, invcap_weights(abilene))
        # Every pair is reachable, so bucket 0 must be empty.
        assert histogram.get(0, 0) == 0
        assert sum(histogram.values()) == 11 * 10
