"""Unit tests for step-size schedules and projection helpers."""

import numpy as np
import pytest

from repro.solvers.subgradient import (
    ConstantStep,
    DiminishingStep,
    SquareSummableStep,
    default_step_for_capacities,
    default_step_for_flows,
    project_nonnegative,
    step_sequence,
)


class TestStepRules:
    def test_constant_step(self):
        rule = ConstantStep(0.5)
        assert rule(0) == 0.5
        assert rule(100) == 0.5

    def test_constant_step_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantStep(0.0)(0)

    def test_diminishing_step_decreases(self):
        rule = DiminishingStep(1.0, decay=0.1)
        values = list(step_sequence(rule, 50))
        assert values[0] == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(values, values[1:], strict=False))
        assert values[-1] < values[0]

    def test_diminishing_step_not_summable(self):
        # sum gamma/(1 + 0.01k) diverges; check it keeps growing slowly.
        rule = DiminishingStep(1.0, decay=0.01)
        partial = sum(step_sequence(rule, 1000))
        assert partial > 100

    def test_diminishing_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DiminishingStep(-1.0)(0)
        with pytest.raises(ValueError):
            DiminishingStep(1.0, decay=-0.5)(1)

    def test_square_summable_step(self):
        rule = SquareSummableStep(2.0)
        assert rule(0) == pytest.approx(2.0)
        assert rule(3) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            SquareSummableStep(0.0)(0)


class TestDefaults:
    def test_default_step_for_capacities(self):
        rule = default_step_for_capacities(np.array([1.0, 4.0, 2.0]))
        assert rule(0) == pytest.approx(0.25)

    def test_default_step_ratio(self):
        rule = default_step_for_capacities(np.array([2.0]), ratio=0.5)
        assert rule(0) == pytest.approx(0.25)

    def test_default_step_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            default_step_for_capacities(np.array([0.0]))

    def test_default_step_for_flows(self):
        rule = default_step_for_flows(np.array([0.0, 5.0]))
        assert rule(0) == pytest.approx(0.2)

    def test_default_step_for_zero_flows_falls_back_to_unit(self):
        rule = default_step_for_flows(np.zeros(3))
        assert rule(0) == pytest.approx(1.0)


class TestProjection:
    def test_project_nonnegative(self):
        vector = np.array([-1.0, 0.0, 2.5])
        assert np.allclose(project_nonnegative(vector), [0.0, 0.0, 2.5])

    def test_projection_does_not_modify_input(self):
        vector = np.array([-1.0, 1.0])
        project_nonnegative(vector)
        assert vector[0] == -1.0
