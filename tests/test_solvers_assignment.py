"""Unit tests for shortest-path traffic assignment (AON and even ECMP)."""

import numpy as np
import pytest

from repro.network.demands import TrafficMatrix
from repro.network.spt import UnreachableError, all_shortest_path_dags
from repro.solvers.assignment import (
    all_or_nothing_assignment,
    ecmp_assignment,
    split_ratio_assignment,
)


class TestEcmpAssignment:
    def test_even_split_on_diamond(self, diamond_network, diamond_demands):
        flows = ecmp_assignment(diamond_network, diamond_demands, np.ones(4))
        assert flows.flow_on(1, 2) == pytest.approx(4.0)
        assert flows.flow_on(1, 3) == pytest.approx(4.0)
        flows.validate(diamond_demands)

    def test_single_path_when_weights_differ(self, diamond_network, diamond_demands):
        weights = {(1, 2): 1.0, (2, 4): 1.0, (1, 3): 3.0, (3, 4): 3.0}
        flows = ecmp_assignment(diamond_network, diamond_demands, weights)
        assert flows.flow_on(1, 2) == pytest.approx(8.0)
        assert flows.flow_on(1, 3) == pytest.approx(0.0)

    def test_transit_traffic_split_downstream(self, fig4, fig4_tm):
        flows = ecmp_assignment(fig4, fig4_tm, np.ones(fig4.num_links))
        # ECMP may overload links (that is OSPF's whole problem), but the
        # routing must still conserve flow.
        assert flows.conservation_violation(fig4_tm) == pytest.approx(0.0, abs=1e-9)
        # All demand must leave node 1 (12 units over its out links).
        out_total = sum(flows.flow_on(1, v) for v in fig4.neighbors(1))
        assert out_total == pytest.approx(12.0)

    def test_unreachable_demand_raises(self, line_network):
        demands = TrafficMatrix({(4, 1): 1.0})
        with pytest.raises(UnreachableError):
            ecmp_assignment(line_network, demands, np.ones(3))

    def test_precomputed_dags_reused(self, diamond_network, diamond_demands):
        dags = all_shortest_path_dags(diamond_network, [4], np.ones(4))
        flows = ecmp_assignment(diamond_network, diamond_demands, np.ones(4), dags=dags)
        assert flows.flow_on(1, 2) == pytest.approx(4.0)

    def test_conserves_total_demand(self, fig1, fig1_tm):
        flows = ecmp_assignment(fig1, fig1_tm, np.ones(4))
        flows.validate(fig1_tm)
        # Flow into node 3 for destination 3 equals the demand toward 3.
        into_3 = flows.flow_on(1, 3, destination=3) + flows.flow_on(2, 3, destination=3)
        assert into_3 == pytest.approx(1.0)


class TestAllOrNothing:
    def test_no_splitting(self, diamond_network, diamond_demands):
        flows = all_or_nothing_assignment(diamond_network, diamond_demands, np.ones(4))
        loads = sorted(
            [flows.flow_on(1, 2), flows.flow_on(1, 3)], reverse=True
        )
        assert loads[0] == pytest.approx(8.0)
        assert loads[1] == pytest.approx(0.0)
        flows.validate(diamond_demands)

    def test_deterministic(self, fig4, fig4_tm):
        weights = np.ones(fig4.num_links)
        first = all_or_nothing_assignment(fig4, fig4_tm, weights).aggregate()
        second = all_or_nothing_assignment(fig4, fig4_tm, weights).aggregate()
        assert np.allclose(first, second)

    def test_respects_weights(self, fig1, fig1_tm):
        # Force the 1->3 demand onto the detour 1-2-3 by making (1,3) costly.
        weights = {(1, 3): 10.0, (3, 4): 1.0, (1, 2): 1.0, (2, 3): 1.0}
        flows = all_or_nothing_assignment(fig1, fig1_tm, weights)
        assert flows.flow_on(1, 2) == pytest.approx(1.0)
        assert flows.flow_on(1, 3) == pytest.approx(0.0)

    def test_unreachable_raises(self, line_network):
        demands = TrafficMatrix({(3, 1): 1.0})
        with pytest.raises(UnreachableError):
            all_or_nothing_assignment(line_network, demands, np.ones(3))


class TestSplitRatioAssignment:
    def test_explicit_ratios(self, diamond_network, diamond_demands):
        dags = all_shortest_path_dags(diamond_network, [4], np.ones(4))
        ratios = {4: {1: {2: 0.75, 3: 0.25}}}
        flows = split_ratio_assignment(diamond_network, diamond_demands, dags, ratios)
        assert flows.flow_on(1, 2) == pytest.approx(6.0)
        assert flows.flow_on(1, 3) == pytest.approx(2.0)
        flows.validate(diamond_demands)

    def test_missing_ratios_fall_back_to_even(self, diamond_network, diamond_demands):
        dags = all_shortest_path_dags(diamond_network, [4], np.ones(4))
        flows = split_ratio_assignment(diamond_network, diamond_demands, dags, {})
        assert flows.flow_on(1, 2) == pytest.approx(4.0)

    def test_missing_dag_raises(self, diamond_network, diamond_demands):
        with pytest.raises(UnreachableError):
            split_ratio_assignment(diamond_network, diamond_demands, {}, {})

    def test_ratios_renormalised(self, diamond_network, diamond_demands):
        dags = all_shortest_path_dags(diamond_network, [4], np.ones(4))
        # Ratios not summing to one are normalised over the DAG's next hops.
        ratios = {4: {1: {2: 3.0, 3: 1.0}}}
        flows = split_ratio_assignment(diamond_network, diamond_demands, dags, ratios)
        assert flows.flow_on(1, 2) == pytest.approx(6.0)

    @pytest.mark.parametrize("backend", ["python", "sparse"])
    def test_degenerate_stored_ratios_warn_and_fall_back_evenly(
        self, diamond_network, diamond_demands, backend, caplog
    ):
        """Stored-but-zero ratios are no longer a *silent* renormalisation.

        The traffic is still delivered with an even split (dropping it would
        be worse), but the fallback is logged so broken split configurations
        surface instead of hiding behind plausible-looking flows.
        """
        import logging

        dags = all_shortest_path_dags(diamond_network, [4], np.ones(4))
        ratios = {4: {1: {2: 0.0, 3: 0.0}}}
        with caplog.at_level(logging.WARNING, logger="repro.routing.compiled"):
            flows = split_ratio_assignment(
                diamond_network, diamond_demands, dags, ratios, backend=backend
            )
        assert flows.flow_on(1, 2) == pytest.approx(4.0)
        assert flows.flow_on(1, 3) == pytest.approx(4.0)
        warnings = [r for r in caplog.records if "falling back to an even split" in r.message]
        assert len(warnings) == 1

    @pytest.mark.parametrize("backend", ["python", "sparse"])
    def test_degenerate_ratios_at_unloaded_node_stay_silent(
        self, diamond_network, backend, caplog
    ):
        """No traffic through the degenerate node -> no warning (oracle parity).

        The oracle only normalises (and hence only warns) for nodes that
        actually carry load; the sparse backend defers its warning until
        after propagation for the same reason.
        """
        import logging

        dags = all_shortest_path_dags(diamond_network, [4], np.ones(4))
        # Demand enters at 2, so node 1 (which holds the broken ratios)
        # never carries traffic towards 4.
        demands = TrafficMatrix({(2, 4): 5.0})
        ratios = {4: {1: {2: 0.0, 3: 0.0}}}
        with caplog.at_level(logging.WARNING, logger="repro.routing.compiled"):
            flows = split_ratio_assignment(
                diamond_network, demands, dags, ratios, backend=backend
            )
        assert flows.flow_on(2, 4) == pytest.approx(5.0)
        assert not caplog.records

    @pytest.mark.parametrize("backend", ["python", "sparse"])
    def test_absent_node_ratios_fall_back_silently(
        self, diamond_network, diamond_demands, backend, caplog
    ):
        """Nodes simply missing from the mapping keep the quiet even split.

        Omitting single-next-hop nodes is the documented, intended shorthand;
        only *stored* ratios that turn out degenerate deserve a warning.
        """
        import logging

        dags = all_shortest_path_dags(diamond_network, [4], np.ones(4))
        with caplog.at_level(logging.WARNING, logger="repro.routing.compiled"):
            flows = split_ratio_assignment(
                diamond_network, diamond_demands, dags, {4: {}}, backend=backend
            )
        assert flows.flow_on(1, 2) == pytest.approx(4.0)
        assert not caplog.records
