"""Closed-loop reoptimization policies on the simulator binding.

Pins the policy semantics (hold timers are simulated-time events, breaches
that heal cost nothing, the oracle reoptimizes every event) and the replay
integration (reoptimizations fold into the timeline and the per-outage
sustained rows).
"""

from __future__ import annotations

import pytest

from repro.online import (
    ClosedLoopPolicy,
    LinkFailure,
    LinkRecovery,
    OraclePolicy,
    TEController,
    replay_failure_trace,
)
from repro.online.policy import POLICY_FACTORIES
from repro.protocols.fortz_thorup import FortzThorup
from repro.scenarios import single_link_failures
from repro.simulator.events import Simulator
from repro.topology.backbones import abilene_network
from repro.traffic.fortz_thorup_tm import abilene_traffic_matrix


@pytest.fixture(scope="module")
def workload():
    network = abilene_network()
    demands = abilene_traffic_matrix(network, total_volume=1.0, seed=1).scaled(
        0.15 * network.total_capacity()
    )
    return network, demands


def small_optimizer():
    return FortzThorup(restarts=1, seed=0, max_evaluations=60)


def make_policy(**overrides):
    defaults = dict(
        target_mlu=0.95, hold=30.0, optimizer_factory=small_optimizer
    )
    defaults.update(overrides)
    return ClosedLoopPolicy(**defaults)


class TestClosedLoopPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClosedLoopPolicy(target_mlu=0.0)
        with pytest.raises(ValueError):
            ClosedLoopPolicy(target_mlu=0.9, hold=-1.0)
        with pytest.raises(ValueError):
            ClosedLoopPolicy(target_mlu=0.9, cooldown=-1.0)

    def test_sustained_breach_triggers_after_hold(self, workload):
        network, demands = workload
        controller = TEController(network, demands)
        simulator = Simulator()
        policy = make_policy().attach(controller, simulator)
        # link:1-2 degrades the MLU above the 0.95 target (see the online
        # controller benchmark) and never heals within this trace.
        trace = [
            LinkFailure(time=10.0, link=(1, 2)),
            LinkFailure(time=10.0, link=(2, 1)),
        ]
        controller.bind(simulator, trace, on_update=policy.observe)
        simulator.run()
        assert policy.reoptimizations == 1
        decision = policy.decisions[0]
        assert decision.time == pytest.approx(40.0)  # breach at 10 + hold 30
        assert decision.trigger == "hold-expired"
        assert decision.mlu_after < decision.mlu_before
        assert decision.improved

    def test_breach_that_heals_within_hold_costs_nothing(self, workload):
        network, demands = workload
        controller = TEController(network, demands)
        simulator = Simulator()
        # Target above the healed baseline (~0.997) but below the degraded
        # MLU (~1.019): only the outage window breaches.
        policy = make_policy(target_mlu=1.0, hold=50.0).attach(controller, simulator)
        trace = [
            LinkFailure(time=10.0, link=(1, 2)),
            LinkFailure(time=10.0, link=(2, 1)),
            LinkRecovery(time=30.0, link=(1, 2)),
            LinkRecovery(time=30.0, link=(2, 1)),
        ]
        controller.bind(simulator, trace, on_update=policy.observe)
        simulator.run()
        assert policy.reoptimizations == 0

    def test_direct_feed_honours_cooldown(self, workload):
        """Without a simulator, the cooldown still throttles event storms."""
        network, demands = workload
        controller = TEController(network, demands)
        # Target far below anything attainable: every observation breaches.
        policy = make_policy(target_mlu=0.3, hold=0.0, cooldown=100.0).attach(
            controller, simulator=None
        )
        for t in (1.0, 2.0, 3.0):
            update = controller.apply(LinkFailure(time=t, link=(1, 2)))
            policy.observe(controller, update)
            controller.apply(LinkRecovery(time=t, link=(1, 2)))
        # Only the first breach could reoptimize inside the 100 s cooldown.
        assert policy.reoptimizations == 1

    def test_unattainable_target_terminates(self, workload):
        """A breach the search cannot clear must not self-schedule forever."""
        network, demands = workload
        controller = TEController(network, demands)
        simulator = Simulator()
        # Far below the baseline MLU: every state breaches, no weight
        # setting can fix it.
        policy = make_policy(target_mlu=0.05, hold=5.0).attach(controller, simulator)
        trace = [LinkFailure(time=1.0, link=(1, 2))]
        controller.bind(simulator, trace, on_update=policy.observe)
        simulator.run(max_events=50)
        assert simulator.pending() == 0  # terminated, no runaway re-arm
        assert policy.reoptimizations == 1

    def test_registry_names(self):
        assert set(POLICY_FACTORIES) == {"closed-loop", "oracle"}


class TestOraclePolicy:
    def test_reoptimizes_every_event(self, workload):
        network, demands = workload
        controller = TEController(network, demands)
        simulator = Simulator()
        policy = OraclePolicy(optimizer_factory=small_optimizer).attach(
            controller, simulator
        )
        trace = [
            LinkFailure(time=1.0, link=(1, 2)),
            LinkRecovery(time=2.0, link=(1, 2)),
        ]
        controller.bind(simulator, trace, on_update=policy.observe)
        simulator.run()
        assert policy.reoptimizations == len(trace)
        assert all(d.trigger == "every-event" for d in policy.decisions)


class TestReplayIntegration:
    def test_policy_folds_into_outage_rows(self, workload):
        network, demands = workload
        scenarios = [
            s for s in single_link_failures(network) if s.scenario_id == "link:1-2"
        ]
        plain = replay_failure_trace(network, demands, scenarios, period=600, outage=300)
        policy = make_policy(cooldown=600.0)
        looped = replay_failure_trace(
            network, demands, scenarios, period=600, outage=300, policy=policy
        )
        assert plain.reoptimizations == 0
        assert looped.reoptimizations >= 1
        assert looped.policy is policy
        # The sustained row reflects the post-reoptimization state.
        assert looped.outages[0].reoptimizations >= 1
        assert looped.outages[0].mlu < plain.outages[0].mlu
        assert any(kind == "reoptimize" for _, kind, _m in looped.timeline)
        # Rows expose the count for the results store.
        assert looped.outages[0].as_row()["reoptimizations"] >= 1
