"""Profiling exports: collapsed stacks, Chrome traces, trace import, records.

Structural guarantees pinned here:

* collapsed-stack output is the ``frame;frame value`` format flamegraph
  tooling parses — integer microseconds of *self* time, zero-valued stacks
  dropped, worker-rooted frames for merged registries;
* the Chrome trace is valid trace-event JSON (``"X"`` complete events plus
  ``"M"`` thread-name metadata) that Perfetto's importer accepts
  structurally;
* ``load_trace`` round-trips a schema-2 ``trace.jsonl`` byte-identically
  and still reads schema-1 files from pre-1.8 exports;
* memory-tracked sessions record per-span ``alloc``/``peak`` with child
  peaks folded into ancestors;
* ``profile_records`` shapes span aggregates as results-store records that
  the diff layer treats as informational timing.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    chrome_trace,
    collapsed_stacks,
    load_trace,
    profile_records,
    telemetry,
    write_chrome_trace,
    write_flamegraph,
)
from repro.obs.telemetry import Span, TelemetryRegistry
from repro.results.diffing import classify_field


@pytest.fixture(autouse=True)
def _no_registry_leaks():
    telemetry.deactivate()
    yield
    telemetry.deactivate()


def _deterministic_registry() -> TelemetryRegistry:
    """outer(1.5s) > leaf(0.5s); worker chunk(0.25s) > cell(0.1s)."""
    registry = TelemetryRegistry(label="det")
    registry.spans.extend([
        Span(0, None, 0, "outer", {}, start=0.0, wall=1.5, cpu=1.0, status="ok"),
        Span(1, 0, 1, "leaf", {}, start=0.1, wall=0.5, cpu=0.25, status="ok"),
        Span(2, None, 0, "chunk", {"worker": "w-1"}, start=0.0, wall=0.25,
             cpu=0.2, status="ok"),
        Span(3, 2, 1, "cell", {"worker": "w-1"}, start=0.05, wall=0.1,
             cpu=0.08, status="ok"),
    ])
    return registry


# ----------------------------------------------------------------------
# collapsed stacks / flamegraph
# ----------------------------------------------------------------------
def test_collapsed_stacks_use_self_time_and_worker_roots():
    stacks = collapsed_stacks(_deterministic_registry())
    assert stacks == {
        "outer": 1_000_000,        # 1.5s wall minus the 0.5s child
        "outer;leaf": 500_000,
        "w-1;chunk": 150_000,      # worker label becomes the root frame
        "w-1;chunk;cell": 100_000,
    }


def test_collapsed_stacks_drop_zero_valued_and_aggregate_repeats():
    registry = TelemetryRegistry()
    # A parent fully accounted for by its child has zero self time.
    registry.spans.extend([
        Span(0, None, 0, "shell", {}, start=0.0, wall=0.5, cpu=0.0, status="ok"),
        Span(1, 0, 1, "work", {}, start=0.0, wall=0.5, cpu=0.0, status="ok"),
        Span(2, None, 0, "shell", {}, start=1.0, wall=0.25, cpu=0.0, status="ok"),
        Span(3, 2, 1, "work", {}, start=1.0, wall=0.2, cpu=0.0, status="ok"),
    ])
    stacks = collapsed_stacks(registry)
    assert "shell" in stacks and stacks["shell"] == 50_000  # only run 2's self
    assert stacks["shell;work"] == 700_000  # both occurrences aggregated


def test_write_flamegraph_is_valid_collapsed_stack_format(tmp_path):
    path = tmp_path / "flame.txt"
    lines = write_flamegraph(path, _deterministic_registry())
    text = path.read_text()
    rows = text.splitlines()
    assert lines == len(rows) == 4
    assert rows == sorted(rows)  # deterministic output order
    for row in rows:
        stack, _, value = row.rpartition(" ")
        assert stack and all(frame for frame in stack.split(";"))
        assert value.isdigit() and int(value) > 0


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
def test_chrome_trace_structure_and_thread_tracks(tmp_path):
    registry = _deterministic_registry()
    payload = chrome_trace(registry)
    assert payload["displayTimeUnit"] == "ms"
    events = payload["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in meta} == {"thread_name"}
    assert {e["args"]["name"] for e in meta} == {"main", "w-1"}
    assert len(spans) == len(registry.spans)
    for event in spans:
        assert event["pid"] == 0 and isinstance(event["tid"], int)
        assert event["dur"] >= 0 and event["ts"] >= 0  # microseconds
    # Worker spans land on the worker's own track.
    (w1_tid,) = [e["tid"] for e in meta if e["args"]["name"] == "w-1"]
    assert {e["name"] for e in spans if e["tid"] == w1_tid} == {"chunk", "cell"}
    # The file is a single JSON object Perfetto can open.
    path = tmp_path / "trace.json"
    assert write_chrome_trace(path, registry) == len(events)
    assert json.loads(path.read_text()) == json.loads(
        json.dumps(payload, sort_keys=True)
    )


def test_chrome_trace_carries_errors_and_memory_in_args():
    registry = TelemetryRegistry()
    registry.spans.append(
        Span(0, None, 0, "boom", {"stage": "x"}, start=0.0, wall=0.1, cpu=0.1,
             status="error", error="ValueError: boom", alloc=128, peak=256)
    )
    (event,) = [e for e in chrome_trace(registry)["traceEvents"] if e["ph"] == "X"]
    assert event["args"] == {
        "stage": "x", "error": "ValueError: boom",
        "alloc_bytes": 128, "peak_bytes": 256,
    }


# ----------------------------------------------------------------------
# trace import / round trip
# ----------------------------------------------------------------------
def test_load_trace_roundtrip_is_byte_identical(tmp_path):
    registry = TelemetryRegistry(label="rt")
    with registry.span("outer", kind="a"):
        with registry.span("inner"):
            registry.count("c", 3, reason="x")
            registry.observe("h", 0.2)
        with registry.span("inner"):
            pass
    first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    registry.export_jsonl(first)
    loaded = load_trace(first)
    assert loaded.label == "rt"
    assert [s.name for s in loaded.spans] == ["outer", "inner", "inner"]
    loaded.export_jsonl(second)
    assert first.read_bytes() == second.read_bytes()


def test_load_trace_reads_schema_1_files(tmp_path):
    path = tmp_path / "old.jsonl"
    lines = [
        {"type": "meta", "schema": 1, "label": "old", "created_at": "2026-01-01T00:00:00Z"},
        {"type": "span", "id": 0, "parent": None, "depth": 0, "name": "a",
         "tags": {}, "start": 0.0, "wall": 0.5, "cpu": 0.4,
         "status": "ok", "error": None},
        {"type": "counter", "name": "c", "tags": {"k": "v"}, "value": 2.0},
        {"type": "histogram", "name": "h", "edges": [0.1, 1.0],
         "counts": [1, 0, 0], "count": 1, "sum": 0.05, "min": 0.05, "max": 0.05},
        {"type": "future_thing", "payload": "ignored"},  # forward compat
    ]
    path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
    loaded = load_trace(path)
    assert loaded.label == "old" and not loaded.memory
    assert [s.name for s in loaded.spans] == ["a"]
    assert loaded.counter_value("c", k="v") == 2.0
    assert loaded.histograms["h"].count == 1
    # A schema-1 import re-exports as schema 2 with the derived lines.
    out = tmp_path / "new.jsonl"
    loaded.export_jsonl(out)
    parsed = [json.loads(line) for line in out.read_text().splitlines()]
    assert parsed[0]["schema"] == 2
    assert {"span_stats", "span_tree"} <= {record["type"] for record in parsed}


def test_load_trace_rejects_non_json_lines(tmp_path):
    path = tmp_path / "broken.jsonl"
    path.write_text('{"type": "meta", "schema": 2}\nnot json\n')
    with pytest.raises(ValueError, match="broken.jsonl:2"):
        load_trace(path)


# ----------------------------------------------------------------------
# memory tracking
# ----------------------------------------------------------------------
def test_memory_session_records_alloc_and_folds_child_peaks(tmp_path):
    with telemetry.session(label="mem", memory=True) as registry:
        with registry.span("parent"):
            keep = bytearray(256 * 1024)  # survives the span: net allocation
            with registry.span("child"):
                transient = bytearray(1024 * 1024)
                del transient
        del keep
    parent, child = registry.spans
    assert parent.alloc is not None and child.alloc is not None
    assert child.peak >= 1024 * 1024  # saw the transient spike
    assert parent.peak >= child.peak  # child peak folded into the ancestor
    assert parent.alloc >= 256 * 1024  # the kept buffer is net allocation
    assert registry.peak_rss_kb and registry.peak_rss_kb > 0
    # The exported meta advertises the memory run; span lines carry bytes.
    path = tmp_path / "mem.jsonl"
    registry.export_jsonl(path)
    parsed = [json.loads(line) for line in path.read_text().splitlines()]
    assert parsed[0]["memory"] is True and parsed[0]["peak_rss_kb"] > 0
    span_rows = [row for row in parsed if row["type"] == "span"]
    assert all("alloc" in row and "peak" in row for row in span_rows)
    # Round trip preserves the memory fields byte-for-byte.
    again = tmp_path / "mem2.jsonl"
    load_trace(path).export_jsonl(again)
    assert path.read_bytes() == again.read_bytes()


def test_plain_registry_records_no_memory_fields():
    registry = TelemetryRegistry(label="plain")
    with registry.span("s"):
        pass
    (span,) = registry.spans
    assert span.alloc is None and span.peak is None
    assert "alloc" not in span.as_record()
    registry.finalize()  # no-op without memory=True
    assert registry.peak_rss_kb is None


# ----------------------------------------------------------------------
# results-store records
# ----------------------------------------------------------------------
def test_profile_records_shape_and_classification():
    registry = _deterministic_registry()
    records = profile_records(registry, "Abilene")
    assert [r["span"] for r in records] == ["cell", "chunk", "leaf", "outer"]
    for record in records:
        assert record["scenario"] == "__profile__"
        assert record["kind"] == "profile"
        assert record["topology"] == "Abilene"
        assert record["workload"] == record["span"]
        # Every value field is timing- or shape-classified: `repro results
        # diff` never hard-gates on profile numbers.
        for key in record:
            if key in ("scenario", "kind", "protocol", "topology", "workload",
                       "span"):
                continue
            assert classify_field(key) in ("timing", "shape"), key
    (outer,) = [r for r in records if r["span"] == "outer"]
    assert outer["count"] == 1
    assert outer["wall_seconds"] == pytest.approx(1.5)
    assert outer["self_seconds"] == pytest.approx(1.0)


def test_profile_records_empty_without_telemetry():
    assert profile_records(None, "Abilene") == []
    assert profile_records(TelemetryRegistry(), "Abilene") == []
