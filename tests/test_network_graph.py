"""Unit tests for the directed capacitated network model."""

import numpy as np
import pytest

from repro.network.graph import Link, Network, NetworkError, NetworkSummary


class TestConstruction:
    def test_add_link_registers_nodes(self):
        net = Network()
        net.add_link("a", "b", 5.0)
        assert net.has_node("a") and net.has_node("b")
        assert net.num_nodes == 2
        assert net.num_links == 1

    def test_add_node_is_idempotent(self):
        net = Network()
        net.add_node(1)
        net.add_node(1)
        assert net.num_nodes == 1

    def test_duplicate_link_rejected(self):
        net = Network()
        net.add_link(1, 2, 1.0)
        with pytest.raises(NetworkError):
            net.add_link(1, 2, 2.0)

    def test_self_loop_rejected(self):
        net = Network()
        with pytest.raises(NetworkError):
            net.add_link(1, 1, 1.0)

    def test_non_positive_capacity_rejected(self):
        net = Network()
        with pytest.raises(NetworkError):
            net.add_link(1, 2, 0.0)
        with pytest.raises(NetworkError):
            net.add_link(1, 2, -3.0)

    def test_duplex_link_adds_both_directions(self):
        net = Network()
        forward, backward = net.add_duplex_link(1, 2, 4.0)
        assert forward.endpoints == (1, 2)
        assert backward.endpoints == (2, 1)
        assert net.num_links == 2

    def test_from_link_list(self):
        net = Network.from_link_list([(1, 2, 3.0), (2, 3, 4.0)], name="x")
        assert net.name == "x"
        assert net.num_links == 2

    def test_from_link_list_duplex(self):
        net = Network.from_link_list([(1, 2, 3.0)], duplex=True)
        assert net.num_links == 2
        assert net.has_link(2, 1)

    def test_link_index_is_insertion_order(self):
        net = Network()
        first = net.add_link(1, 2, 1.0)
        second = net.add_link(2, 3, 1.0)
        assert first.index == 0
        assert second.index == 1
        assert net.link_by_index(1).endpoints == (2, 3)


class TestQueries:
    def test_out_and_in_links(self, triangle_network):
        out_targets = {link.target for link in triangle_network.out_links(1)}
        assert out_targets == {2, 3}
        in_sources = {link.source for link in triangle_network.in_links(1)}
        assert in_sources == {2, 3}

    def test_neighbors_and_predecessors(self, diamond_network):
        assert set(diamond_network.neighbors(1)) == {2, 3}
        assert set(diamond_network.predecessors(4)) == {2, 3}

    def test_unknown_node_raises(self):
        net = Network()
        net.add_link(1, 2, 1.0)
        with pytest.raises(NetworkError):
            net.node_index(99)

    def test_unknown_link_raises(self, triangle_network):
        with pytest.raises(NetworkError):
            triangle_network.link(1, 99)
        with pytest.raises(NetworkError):
            triangle_network.link_index(99, 1)

    def test_contains_and_len(self, diamond_network):
        assert (1, 2) in diamond_network
        assert (2, 1) not in diamond_network
        assert len(diamond_network) == 4

    def test_capacity_vectors(self, diamond_network):
        assert np.allclose(diamond_network.capacities, 10.0)
        assert diamond_network.total_capacity() == pytest.approx(40.0)

    def test_capacity_of(self, diamond_network):
        assert diamond_network.capacity_of(1, 2) == pytest.approx(10.0)


class TestWeightConversions:
    def test_weight_vector_roundtrip(self, diamond_network):
        mapping = {(1, 2): 1.0, (2, 4): 2.0, (1, 3): 3.0, (3, 4): 4.0}
        vector = diamond_network.weight_vector(mapping)
        assert diamond_network.weight_dict(vector) == mapping

    def test_weight_dict_rejects_bad_shape(self, diamond_network):
        with pytest.raises(NetworkError):
            diamond_network.weight_dict([1.0, 2.0])

    def test_weight_vector_missing_edges_default_zero(self, diamond_network):
        vector = diamond_network.weight_vector({(1, 2): 5.0})
        assert vector[diamond_network.link_index(1, 2)] == 5.0
        assert vector.sum() == 5.0


class TestStructure:
    def test_triangle_is_strongly_connected(self, triangle_network):
        assert triangle_network.is_connected()
        assert triangle_network.is_strongly_connected()
        assert triangle_network.is_symmetric()

    def test_diamond_not_strongly_connected(self, diamond_network):
        assert diamond_network.is_connected()
        assert not diamond_network.is_strongly_connected()
        assert not diamond_network.is_symmetric()

    def test_to_networkx_and_back(self, triangle_network):
        graph = triangle_network.to_networkx()
        rebuilt = Network.from_networkx(graph)
        assert rebuilt.num_nodes == triangle_network.num_nodes
        assert set(rebuilt.edges) == set(triangle_network.edges)

    def test_from_networkx_requires_capacity(self):
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_edge(1, 2)
        with pytest.raises(NetworkError):
            Network.from_networkx(graph)

    def test_copy_is_independent(self, triangle_network):
        clone = triangle_network.copy()
        clone.add_link(1, 99, 1.0)
        assert not triangle_network.has_node(99)
        assert clone.num_links == triangle_network.num_links + 1

    def test_scaled_capacities(self, triangle_network):
        scaled = triangle_network.scaled(2.0)
        assert np.allclose(scaled.capacities, 2 * triangle_network.capacities)
        with pytest.raises(NetworkError):
            triangle_network.scaled(0.0)


class TestSummary:
    def test_summary_of(self, triangle_network):
        summary = NetworkSummary.of(triangle_network, kind="test", extra_field=1)
        assert summary.num_nodes == 3
        assert summary.num_links == 6
        assert summary.total_capacity == pytest.approx(60.0)
        assert summary.extra["extra_field"] == 1

    def test_link_is_frozen(self):
        link = Link("a", "b", 1.0)
        with pytest.raises(AttributeError):
            link.capacity = 2.0
