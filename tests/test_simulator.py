"""Unit tests for the discrete-event engine and the flow-level simulator."""

import numpy as np
import pytest

from repro.protocols.ospf import OSPF
from repro.protocols.spef_protocol import SPEFProtocol
from repro.simulator.events import Simulator
from repro.simulator.simulation import (
    FlowLevelSimulation,
    proportional_split_ratios,
    simulate_protocol,
)
from repro.solvers.assignment import ecmp_assignment


class TestEventEngine:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda s: fired.append("b"))
        sim.schedule(1.0, lambda s: fired.append("a"))
        sim.run()
        assert fired == ["a", "b"]
        assert sim.now == 2.0

    def test_simultaneous_events_keep_insertion_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda s: fired.append("first"))
        sim.schedule(1.0, lambda s: fired.append("second"))
        sim.run()
        assert fired == ["first", "second"]

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule(0.5, lambda s: None)

    def test_schedule_in_relative_delay(self):
        sim = Simulator()
        fired = []
        sim.schedule_in(0.5, lambda s: fired.append(s.now))
        sim.run()
        assert fired == [0.5]
        with pytest.raises(ValueError):
            sim.schedule_in(-1.0, lambda s: None)

    def test_cancellation(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda s: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda s: fired.append(1))
        sim.schedule(5.0, lambda s: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        assert sim.pending() == 1

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(s):
            fired.append(s.now)
            if len(fired) < 3:
                s.schedule_in(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_max_events_budget(self):
        sim = Simulator()
        for t in range(10):
            sim.schedule(float(t + 1), lambda s: None)
        sim.run(max_events=3)
        assert sim.processed_events == 3

    def test_step_and_peek(self):
        sim = Simulator()
        assert sim.peek() is None
        assert sim.step() is False
        sim.schedule(1.0, lambda s: None)
        assert sim.peek() == 1.0
        assert sim.step() is True


class TestProportionalSplitRatios:
    def test_ratios_from_flow_assignment(self, diamond_network, diamond_demands):
        flows = ecmp_assignment(diamond_network, diamond_demands, np.ones(4))
        ratios = proportional_split_ratios(flows)
        assert ratios[4][1][2] == pytest.approx(0.5)
        assert ratios[4][1][3] == pytest.approx(0.5)

    def test_zero_flow_nodes_absent(self, diamond_network, diamond_demands):
        flows = ecmp_assignment(
            diamond_network,
            diamond_demands,
            {(1, 2): 1.0, (2, 4): 1.0, (1, 3): 9.0, (3, 4): 9.0},
        )
        ratios = proportional_split_ratios(flows)
        assert 3 not in ratios[4]


class TestFlowLevelSimulation:
    def test_validation(self, diamond_network, diamond_demands):
        with pytest.raises(ValueError):
            FlowLevelSimulation(diamond_network, diamond_demands, {}, mean_flow_size=0.0)
        with pytest.raises(ValueError):
            FlowLevelSimulation(diamond_network, diamond_demands, {}, flow_rate_fraction=0.0)
        sim = FlowLevelSimulation(diamond_network, diamond_demands, {})
        with pytest.raises(ValueError):
            sim.run(duration=0.0)
        with pytest.raises(ValueError):
            sim.run(duration=1.0, warmup=2.0)

    def test_mean_load_matches_fluid_assignment(self, diamond_network, diamond_demands):
        ospf = OSPF()
        ratios = ospf.split_ratios(diamond_network, diamond_demands)
        sim = FlowLevelSimulation(
            diamond_network,
            diamond_demands,
            ratios,
            mean_flow_size=0.5,
            flow_rate_fraction=0.05,
            seed=42,
        )
        result = sim.run(duration=300.0)
        fluid = ospf.route(diamond_network, diamond_demands).aggregate_dict()
        for edge, expected in fluid.items():
            assert result.mean_link_load[edge] == pytest.approx(expected, rel=0.25, abs=0.3)

    def test_deterministic_given_seed(self, diamond_network, diamond_demands):
        ratios = OSPF().split_ratios(diamond_network, diamond_demands)
        a = FlowLevelSimulation(diamond_network, diamond_demands, ratios, seed=7).run(duration=50)
        b = FlowLevelSimulation(diamond_network, diamond_demands, ratios, seed=7).run(duration=50)
        assert a.mean_link_load == b.mean_link_load

    def test_missing_forwarding_entries_drop_flows(self, diamond_network, diamond_demands):
        result = FlowLevelSimulation(diamond_network, diamond_demands, {}, seed=1).run(duration=50)
        assert result.dropped_flows > 0
        assert all(load == 0 for load in result.mean_link_load.values())

    def test_result_helpers(self, diamond_network, diamond_demands):
        ratios = OSPF().split_ratios(diamond_network, diamond_demands)
        result = FlowLevelSimulation(diamond_network, diamond_demands, ratios, seed=3).run(duration=100)
        assert set(result.used_links()) <= set(diamond_network.edges)
        assert result.mean_load_vector().shape == (4,)
        assert result.load_variation() >= 0
        utilization = result.mean_utilization()
        assert all(0 <= value <= 1.5 for value in utilization.values())
        assert result.flows_started >= result.flows_completed


class TestSimulateProtocol:
    def test_ospf_simulation(self, fig4, fig4_tm):
        result = simulate_protocol(fig4, fig4_tm, OSPF(), duration=100.0, seed=5)
        assert result.flows_started > 0
        assert result.dropped_flows == 0

    def test_spef_simulation_roughly_matches_fluid(self, fig4, fig4_tm):
        protocol = SPEFProtocol()
        fluid = protocol.route(fig4, fig4_tm)
        result = simulate_protocol(fig4, fig4_tm, protocol, duration=200.0, seed=5)
        fluid_vector = fluid.aggregate()
        sim_vector = result.mean_load_vector()
        # The correlation between simulated and fluid loads should be strong.
        correlation = np.corrcoef(fluid_vector, sim_vector)[0, 1]
        assert correlation > 0.9

    def test_protocol_without_split_ratios_uses_fluid_fallback(self, fig1, fig1_tm):
        from repro.protocols.minmax_mlu import MinMaxMLU

        result = simulate_protocol(fig1, fig1_tm, MinMaxMLU(), duration=100.0, seed=2)
        assert result.dropped_flows == 0
        assert result.flows_started > 0
