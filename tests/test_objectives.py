"""Unit tests for the (q, beta) load-balance objective family."""

import numpy as np
import pytest

from repro.core.objectives import LoadBalanceObjective, ObjectiveError, normalized_utility


class TestConstruction:
    def test_negative_beta_rejected(self):
        with pytest.raises(ObjectiveError):
            LoadBalanceObjective(beta=-1.0)

    def test_nonpositive_q_rejected(self):
        with pytest.raises(ObjectiveError):
            LoadBalanceObjective(beta=1.0, q=0.0)
        with pytest.raises(ObjectiveError):
            LoadBalanceObjective(beta=1.0, q=np.array([1.0, -2.0]))

    def test_named_constructors(self, fig1):
        assert LoadBalanceObjective.proportional().beta == 1.0
        assert LoadBalanceObjective.minimum_hop().beta == 0.0
        delay = LoadBalanceObjective.delay_weighted(fig1)
        assert delay.beta == 0.0
        assert np.allclose(np.asarray(delay.q), fig1.delays)
        mm1 = LoadBalanceObjective.mm1_delay(fig1)
        assert mm1.beta == 2.0
        assert np.allclose(np.asarray(mm1.q), fig1.capacities)

    def test_describe(self):
        label = LoadBalanceObjective(beta=2.0, q=3.0).describe()
        assert "beta=2" in label and "q=3" in label
        per_link = LoadBalanceObjective(beta=1.0, q=np.array([1.0, 2.0])).describe()
        assert "per-link" in per_link


class TestUtility:
    def test_beta1_is_log(self):
        objective = LoadBalanceObjective(beta=1.0)
        spare = np.array([1.0, np.e])
        assert np.allclose(objective.utility(spare), [0.0, 1.0])

    def test_beta0_is_linear(self):
        objective = LoadBalanceObjective(beta=0.0, q=2.0)
        spare = np.array([0.0, 3.0])
        assert np.allclose(objective.utility(spare), [0.0, 6.0])

    def test_beta2_matches_formula(self):
        objective = LoadBalanceObjective(beta=2.0)
        spare = np.array([2.0])
        # q * s^(1-2) / (1-2) = -1/s
        assert objective.utility(spare)[0] == pytest.approx(-0.5)

    def test_barrier_diverges_at_zero_spare(self):
        for beta in (1.0, 2.0, 5.0):
            objective = LoadBalanceObjective(beta=beta)
            assert objective.utility(np.array([0.0]))[0] == -np.inf
            assert objective.is_barrier()

    def test_non_barrier_finite_at_zero(self):
        objective = LoadBalanceObjective(beta=0.5)
        assert np.isfinite(objective.utility(np.array([0.0]))[0])
        assert not objective.is_barrier()

    def test_total_utility(self):
        objective = LoadBalanceObjective(beta=0.0)
        assert objective.total_utility(np.array([1.0, 2.0])) == pytest.approx(3.0)

    def test_q_shape_mismatch_rejected(self):
        objective = LoadBalanceObjective(beta=1.0, q=np.array([1.0, 2.0]))
        with pytest.raises(ObjectiveError):
            objective.utility(np.array([1.0, 2.0, 3.0]))

    def test_concavity_in_spare(self):
        # Utility must be concave: midpoint value >= mean of endpoint values.
        for beta in (0.0, 0.5, 1.0, 2.0, 4.0):
            objective = LoadBalanceObjective(beta=beta)
            lo, hi = 1.0, 9.0
            mid = objective.utility(np.array([(lo + hi) / 2]))[0]
            ends = objective.utility(np.array([lo, hi]))
            assert mid >= (ends[0] + ends[1]) / 2 - 1e-12


class TestDerivatives:
    def test_derivative_formula(self):
        objective = LoadBalanceObjective(beta=2.0, q=3.0)
        spare = np.array([2.0])
        assert objective.derivative(spare)[0] == pytest.approx(3.0 / 4.0)

    def test_derivative_is_decreasing_in_spare(self):
        objective = LoadBalanceObjective(beta=1.5)
        values = objective.derivative(np.array([1.0, 2.0, 4.0]))
        assert values[0] > values[1] > values[2]

    def test_derivative_at_zero_is_infinite_for_positive_beta(self):
        objective = LoadBalanceObjective(beta=1.0)
        assert objective.derivative(np.array([0.0]))[0] == np.inf

    def test_beta0_derivative_is_q(self):
        objective = LoadBalanceObjective(beta=0.0, q=7.0)
        assert np.allclose(objective.derivative(np.array([5.0, 0.0])), 7.0)

    def test_derivative_inverse_roundtrip(self):
        for beta in (0.5, 1.0, 2.0, 3.0):
            objective = LoadBalanceObjective(beta=beta, q=2.0)
            spare = np.array([0.5, 1.0, 4.0])
            weights = objective.derivative(spare)
            recovered = objective.derivative_inverse(weights)
            assert np.allclose(recovered, spare)

    def test_derivative_inverse_beta0_threshold(self):
        objective = LoadBalanceObjective(beta=0.0, q=2.0)
        inverse = objective.derivative_inverse(np.array([3.0, 1.0]))
        assert inverse[0] == 0.0
        assert inverse[1] == np.inf

    def test_mm1_example1_weights(self, fig1):
        # Example 1: with beta=1 the optimal weight is 1 / (c - f).
        objective = LoadBalanceObjective.proportional()
        spare = np.array([0.5])
        assert objective.derivative(spare)[0] == pytest.approx(2.0)


class TestCongestionView:
    def test_cost_is_negative_utility(self, fig1):
        objective = LoadBalanceObjective.proportional()
        flow = np.array([0.5, 0.5, 0.2, 0.2])
        cost = objective.congestion_cost(fig1, flow)
        utility = objective.total_utility(fig1.capacities - flow)
        assert cost == pytest.approx(-utility)

    def test_cost_infinite_when_saturated(self, fig1):
        objective = LoadBalanceObjective.proportional()
        flow = fig1.capacities.copy()
        assert objective.congestion_cost(fig1, flow) == np.inf

    def test_gradient_matches_derivative(self, fig1):
        objective = LoadBalanceObjective(beta=2.0)
        flow = np.array([0.3, 0.1, 0.0, 0.0])
        gradient = objective.congestion_gradient(fig1, flow)
        assert np.allclose(gradient, objective.derivative(fig1.capacities - flow))

    def test_optimal_weights_alias(self, fig1):
        objective = LoadBalanceObjective.proportional()
        flow = np.zeros(4)
        assert np.allclose(
            objective.optimal_weights(fig1, flow), objective.congestion_gradient(fig1, flow)
        )

    def test_verify_load_balance_sign(self, fig1):
        objective = LoadBalanceObjective.proportional()
        candidate = np.array([1.0, 1.0, 1.0, 1.0])
        worse = np.array([0.5, 0.5, 0.5, 0.5])
        better = np.array([2.0, 2.0, 2.0, 2.0])
        assert objective.verify_load_balance(fig1, candidate, worse) < 0
        assert objective.verify_load_balance(fig1, candidate, better) > 0


class TestNormalizedUtility:
    def test_matches_formula(self):
        u = np.array([0.5, 0.25])
        assert normalized_utility(u) == pytest.approx(np.log(0.5) + np.log(0.75))

    def test_infinite_when_overloaded(self):
        assert normalized_utility(np.array([0.5, 1.0])) == float("-inf")
        assert normalized_utility(np.array([1.2])) == float("-inf")

    def test_zero_when_idle(self):
        assert normalized_utility(np.zeros(5)) == pytest.approx(0.0)
