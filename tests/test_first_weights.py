"""Unit tests for Algorithm 1 (dual decomposition for the first link weights)."""

import numpy as np
import pytest

from repro.core.first_weights import compute_first_weights, round_weights
from repro.core.objectives import LoadBalanceObjective
from repro.core.te_problem import TEProblem, solve_optimal_te
from repro.network.demands import TrafficMatrix
from repro.solvers.subgradient import DiminishingStep


class TestAlgorithm1:
    def test_fig1_converges_to_table1_weights(self, fig1, fig1_tm):
        # A constant step only converges to a neighbourhood of the optimum
        # (Theorem 4.1 needs a diminishing step for exact convergence), so the
        # Table I values -- w(1,3)=3, w(3,4)=10, w(1,2)=w(2,3)=1.5 -- are
        # checked with a correspondingly loose tolerance.
        result = compute_first_weights(
            fig1, fig1_tm, max_iterations=4000, tolerance=1e-4, step_ratio=1.0
        )
        weights = fig1.weight_dict(result.weights)
        assert weights[(1, 3)] == pytest.approx(3.0, rel=0.2)
        assert weights[(3, 4)] == pytest.approx(10.0, rel=0.1)
        assert weights[(1, 2)] == pytest.approx(1.5, rel=0.35)
        assert weights[(2, 3)] == pytest.approx(1.5, rel=0.35)

    def test_matches_centralized_solver_utility(self, fig1, fig1_tm):
        # The primal recovered from Algorithm 1 (ergodic average of the
        # routing subproblem solutions) should achieve nearly the same utility
        # as the centralized Frank-Wolfe optimum.
        objective = LoadBalanceObjective.proportional()
        central = solve_optimal_te(TEProblem(fig1, fig1_tm, objective))
        dual = compute_first_weights(
            fig1, fig1_tm, objective=objective, max_iterations=4000, tolerance=1e-4
        )
        recovered_utility = objective.total_utility(dual.flows.spare_capacity())
        assert recovered_utility == pytest.approx(central.utility, rel=0.05)

    def test_weights_nonnegative(self, fig4, fig4_tm):
        result = compute_first_weights(fig4, fig4_tm, max_iterations=200)
        assert np.all(result.weights >= 0)

    def test_recovered_flows_conserve_demand(self, fig4, fig4_tm):
        result = compute_first_weights(fig4, fig4_tm, max_iterations=500)
        violation = result.flows.conservation_violation(fig4_tm)
        assert violation < 1e-6

    def test_dual_gap_history_recorded(self, fig1, fig1_tm):
        result = compute_first_weights(fig1, fig1_tm, max_iterations=50, tolerance=0.0)
        assert len(result.dual_gap_history) == 50
        assert len(result.dual_objective_history) == 50

    def test_history_can_be_disabled(self, fig1, fig1_tm):
        result = compute_first_weights(
            fig1, fig1_tm, max_iterations=50, tolerance=0.0, record_history=False
        )
        assert result.dual_objective_history == []

    def test_dual_objective_stabilises_with_diminishing_step(self, fig1, fig1_tm):
        result = compute_first_weights(
            fig1,
            fig1_tm,
            max_iterations=2000,
            tolerance=0.0,
            step_rule=DiminishingStep(1.0, decay=0.05),
        )
        history = np.array(result.dual_objective_history)
        early = np.mean(np.abs(np.diff(history[:50])))
        late = np.mean(np.abs(np.diff(history[-50:])))
        assert late < early

    def test_initial_weights_default_is_invcap(self, fig1, fig1_tm):
        result = compute_first_weights(fig1, fig1_tm, max_iterations=1, tolerance=0.0)
        # After one iteration the weights are one step away from 1/c.
        assert result.iterations == 1

    def test_custom_initial_weights_shape_checked(self, fig1, fig1_tm):
        with pytest.raises(ValueError):
            compute_first_weights(fig1, fig1_tm, initial_weights=np.ones(2))

    def test_custom_step_rule(self, fig1, fig1_tm):
        result = compute_first_weights(
            fig1,
            fig1_tm,
            max_iterations=1500,
            tolerance=1e-3,
            step_rule=DiminishingStep(1.0, decay=0.01),
        )
        weights = fig1.weight_dict(result.weights)
        assert weights[(3, 4)] == pytest.approx(10.0, rel=0.2)

    def test_larger_step_ratio_changes_trajectory(self, fig1, fig1_tm):
        slow = compute_first_weights(fig1, fig1_tm, max_iterations=30, tolerance=0.0, step_ratio=0.1)
        fast = compute_first_weights(fig1, fig1_tm, max_iterations=30, tolerance=0.0, step_ratio=2.0)
        assert not np.allclose(slow.weights, fast.weights)

    def test_empty_demands(self, fig1):
        result = compute_first_weights(fig1, TrafficMatrix(), max_iterations=5)
        assert np.allclose(result.flows.aggregate(), 0.0)

    def test_target_flows_property(self, fig1, fig1_tm):
        result = compute_first_weights(fig1, fig1_tm, max_iterations=500)
        target = result.target_flows
        assert target.shape == (fig1.num_links,)
        assert np.all(target >= -1e-9)
        assert np.all(target <= fig1.capacities + 1e-9)


class TestRoundWeights:
    def test_max_spare_link_gets_weight_one(self):
        weights = np.array([0.5, 1.0, 2.0])
        spare = np.array([2.0, 1.0, 0.5])
        rounded = round_weights(weights, spare)
        assert rounded[0] == 1.0
        assert np.all(rounded >= 1.0)
        assert np.all(rounded == np.rint(rounded))

    def test_max_weight_cap(self):
        rounded = round_weights(np.array([100.0, 1.0]), np.array([10.0, 10.0]), max_weight=255)
        assert rounded[0] == 255.0

    def test_zero_spare_falls_back_to_unit_scale(self):
        rounded = round_weights(np.array([0.4, 2.0]), np.zeros(2))
        assert np.all(rounded >= 1.0)

    def test_zero_weights_bumped_to_one(self):
        rounded = round_weights(np.array([0.0, 0.2]), np.array([1.0, 1.0]))
        assert rounded[0] == 1.0
