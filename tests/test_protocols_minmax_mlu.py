"""Unit tests for the min-max MLU LP routing baseline."""

import numpy as np
import pytest

from repro.network.demands import TrafficMatrix
from repro.protocols.minmax_mlu import MinMaxMLU


class TestOptimalMlu:
    def test_fig1_value(self, fig1, fig1_tm):
        assert MinMaxMLU().optimal_mlu(fig1, fig1_tm) == pytest.approx(0.9, abs=1e-6)

    def test_diamond_value(self, diamond_network, diamond_demands):
        assert MinMaxMLU().optimal_mlu(diamond_network, diamond_demands) == pytest.approx(0.4, abs=1e-6)


class TestRouting:
    def test_achieves_optimal_mlu(self, fig1, fig1_tm):
        protocol = MinMaxMLU()
        flows = protocol.route(fig1, fig1_tm)
        assert flows.max_link_utilization() == pytest.approx(0.9, abs=1e-5)
        assert flows.conservation_violation(fig1_tm) < 1e-6

    def test_refinement_avoids_gratuitous_detours(self, fig1, fig1_tm):
        # Among the infinitely many MLU-optimal solutions on Fig. 1 the
        # refined one should not push more traffic than necessary onto the
        # two-hop detour.
        flows = MinMaxMLU(refine=True).route(fig1, fig1_tm)
        # Total carried traffic is minimised: the (1,3) demand uses the direct
        # link up to 0.9 utilization and the detour only for the remainder.
        assert flows.utilization_dict()[(1, 3)] == pytest.approx(0.9, abs=1e-4)
        assert flows.utilization_dict()[(1, 2)] == pytest.approx(0.1, abs=1e-4)

    def test_unrefined_also_optimal(self, fig1, fig1_tm):
        flows = MinMaxMLU(refine=False).route(fig1, fig1_tm)
        assert flows.max_link_utilization() == pytest.approx(0.9, abs=1e-5)

    def test_overload_allowed_for_oversized_demands(self, diamond_network):
        demands = TrafficMatrix({(1, 4): 30.0})
        flows = MinMaxMLU(allow_overload=True).route(diamond_network, demands)
        assert flows.max_link_utilization() == pytest.approx(1.5, abs=1e-4)

    def test_split_ratios_not_provided(self, fig1, fig1_tm):
        assert MinMaxMLU().split_ratios(fig1, fig1_tm) is None

    def test_evaluate(self, fig1, fig1_tm):
        evaluation = MinMaxMLU().evaluate(fig1, fig1_tm)
        assert evaluation.max_link_utilization == pytest.approx(0.9, abs=1e-5)
        assert np.isfinite(evaluation.normalized_utility)


class TestWeights:
    def test_weights_nonnegative_with_positive_support(self, fig1, fig1_tm):
        weights = MinMaxMLU().weights(fig1, fig1_tm)
        assert weights is not None
        assert np.all(weights >= 0)
        # Some saturated link must carry a positive shadow price (Table I
        # shows one valid choice: weight 1 on the bottleneck, 0 elsewhere;
        # the LP dual may pick a different but equally valid support).
        assert weights.max() > 0
