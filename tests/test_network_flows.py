"""Unit tests for flow assignments (traffic distributions)."""

import numpy as np
import pytest

from repro.network.demands import TrafficMatrix
from repro.network.flows import FlowAssignment, FlowError


class TestConstruction:
    def test_zeros(self, diamond_network):
        flows = FlowAssignment.zeros(diamond_network, destinations=[4])
        assert np.allclose(flows.aggregate(), 0.0)
        assert flows.destinations == [4]

    def test_add_flow(self, diamond_network):
        flows = FlowAssignment(network=diamond_network)
        flows.add_flow(4, 1, 2, 3.0)
        assert flows.flow_on(1, 2) == pytest.approx(3.0)
        assert flows.flow_on(1, 2, destination=4) == pytest.approx(3.0)
        assert flows.flow_on(1, 2, destination=99) == 0.0

    def test_negative_flow_rejected(self, diamond_network):
        flows = FlowAssignment(network=diamond_network)
        with pytest.raises(FlowError):
            flows.add_flow(4, 1, 2, -1.0)

    def test_add_path_flow(self, diamond_network):
        flows = FlowAssignment(network=diamond_network)
        flows.add_path_flow(4, [1, 2, 4], 2.0)
        assert flows.flow_on(1, 2) == pytest.approx(2.0)
        assert flows.flow_on(2, 4) == pytest.approx(2.0)

    def test_from_aggregate(self, diamond_network):
        flows = FlowAssignment.from_aggregate(diamond_network, {(1, 2): 4.0})
        assert flows.flow_on(1, 2) == pytest.approx(4.0)

    def test_copy_is_deep(self, diamond_network):
        flows = FlowAssignment(network=diamond_network)
        flows.add_flow(4, 1, 2, 1.0)
        clone = flows.copy()
        clone.add_flow(4, 1, 2, 1.0)
        assert flows.flow_on(1, 2) == pytest.approx(1.0)
        assert clone.flow_on(1, 2) == pytest.approx(2.0)


class TestDerivedQuantities:
    @pytest.fixture
    def even_split(self, diamond_network):
        flows = FlowAssignment(network=diamond_network)
        flows.add_path_flow(4, [1, 2, 4], 4.0)
        flows.add_path_flow(4, [1, 3, 4], 4.0)
        return flows

    def test_aggregate_and_spare(self, even_split, diamond_network):
        assert np.allclose(even_split.aggregate(), 4.0)
        assert np.allclose(even_split.spare_capacity(), 6.0)

    def test_utilization(self, even_split):
        assert np.allclose(even_split.utilization(), 0.4)
        assert even_split.max_link_utilization() == pytest.approx(0.4)

    def test_sorted_utilizations(self, diamond_network):
        flows = FlowAssignment(network=diamond_network)
        flows.add_path_flow(4, [1, 2, 4], 6.0)
        flows.add_path_flow(4, [1, 3, 4], 2.0)
        descending = flows.sorted_utilizations()
        assert list(descending) == sorted(descending, reverse=True)
        ascending = flows.sorted_utilizations(descending=False)
        assert list(ascending) == sorted(ascending)

    def test_used_links(self, diamond_network):
        flows = FlowAssignment(network=diamond_network)
        flows.add_path_flow(4, [1, 2, 4], 1.0)
        assert set(flows.used_links()) == {(1, 2), (2, 4)}

    def test_aggregate_dict_and_utilization_dict(self, even_split):
        assert even_split.aggregate_dict()[(1, 2)] == pytest.approx(4.0)
        assert even_split.utilization_dict()[(3, 4)] == pytest.approx(0.4)

    def test_scale(self, even_split):
        halved = even_split.scale(0.5)
        assert np.allclose(halved.aggregate(), 2.0)
        with pytest.raises(FlowError):
            even_split.scale(-1.0)

    def test_addition(self, diamond_network):
        a = FlowAssignment(network=diamond_network)
        a.add_path_flow(4, [1, 2, 4], 1.0)
        b = FlowAssignment(network=diamond_network)
        b.add_path_flow(4, [1, 3, 4], 2.0)
        total = a + b
        assert total.flow_on(1, 2) == pytest.approx(1.0)
        assert total.flow_on(1, 3) == pytest.approx(2.0)


class TestValidation:
    def test_capacity_feasibility(self, diamond_network):
        flows = FlowAssignment(network=diamond_network)
        flows.add_path_flow(4, [1, 2, 4], 11.0)
        assert not flows.is_capacity_feasible()
        demands = TrafficMatrix({(1, 4): 11.0})
        with pytest.raises(FlowError, match="capacity"):
            flows.validate(demands)

    def test_conservation_violation_zero_for_valid_routing(self, diamond_network):
        flows = FlowAssignment(network=diamond_network)
        flows.add_path_flow(4, [1, 2, 4], 4.0)
        flows.add_path_flow(4, [1, 3, 4], 4.0)
        demands = TrafficMatrix({(1, 4): 8.0})
        assert flows.conservation_violation(demands) == pytest.approx(0.0)
        flows.validate(demands)  # should not raise

    def test_conservation_violation_detects_imbalance(self, diamond_network):
        flows = FlowAssignment(network=diamond_network)
        flows.add_flow(4, 1, 2, 4.0)  # flow vanishes at node 2
        demands = TrafficMatrix({(1, 4): 4.0})
        assert flows.conservation_violation(demands) > 1.0
        with pytest.raises(FlowError, match="conservation"):
            flows.validate(demands)

    def test_negative_vector_rejected(self, diamond_network):
        flows = FlowAssignment(network=diamond_network)
        flows.ensure_destination(4)[:] = -1.0
        with pytest.raises(FlowError, match="negative"):
            flows.validate(TrafficMatrix())

    def test_add_flows_different_networks_rejected(self, diamond_network, triangle_network):
        a = FlowAssignment(network=diamond_network)
        b = FlowAssignment(network=triangle_network)
        with pytest.raises(FlowError):
            _ = a + b
