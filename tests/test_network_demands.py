"""Unit tests for traffic matrices and demand handling."""

import pytest

from repro.network.demands import Demand, DemandError, TrafficMatrix


class TestConstruction:
    def test_add_and_get(self):
        tm = TrafficMatrix()
        tm.add(1, 2, 3.0)
        assert tm[(1, 2)] == 3.0
        assert tm[(2, 1)] == 0.0

    def test_add_accumulates(self):
        tm = TrafficMatrix()
        tm.add(1, 2, 3.0)
        tm.add(1, 2, 2.0)
        assert tm[(1, 2)] == 5.0
        assert len(tm) == 1

    def test_zero_volume_ignored(self):
        tm = TrafficMatrix()
        tm.add(1, 2, 0.0)
        assert len(tm) == 0

    def test_negative_volume_rejected(self):
        tm = TrafficMatrix()
        with pytest.raises(DemandError):
            tm.add(1, 2, -1.0)

    def test_self_demand_rejected(self):
        tm = TrafficMatrix()
        with pytest.raises(DemandError):
            tm.add(1, 1, 1.0)

    def test_init_from_mapping(self):
        tm = TrafficMatrix({(1, 2): 1.0, (2, 3): 2.0})
        assert tm.total_volume() == pytest.approx(3.0)

    def test_from_triples_and_demands(self):
        tm1 = TrafficMatrix.from_triples([(1, 2, 1.0), (2, 3, 2.0)])
        tm2 = TrafficMatrix.from_demands([Demand(1, 2, 1.0), Demand(2, 3, 2.0)])
        assert tm1 == tm2

    def test_demand_pair_property(self):
        demand = Demand(1, 2, 5.0)
        assert demand.pair == (1, 2)


class TestAggregations:
    @pytest.fixture
    def tm(self):
        return TrafficMatrix({(1, 3): 1.0, (3, 4): 0.9, (2, 3): 0.5})

    def test_destinations_and_sources(self, tm):
        assert set(tm.destinations()) == {3, 4}
        assert set(tm.sources()) == {1, 3, 2}

    def test_by_destination(self, tm):
        grouped = tm.by_destination()
        assert grouped[3] == {1: 1.0, 2: 0.5}
        assert grouped[4] == {3: 0.9}

    def test_toward(self, tm):
        assert tm.toward(3) == {1: 1.0, 2: 0.5}
        assert tm.toward(99) == {}

    def test_total_volume(self, tm):
        assert tm.total_volume() == pytest.approx(2.4)

    def test_outgoing_incoming_volume(self, tm):
        assert tm.outgoing_volume(1) == pytest.approx(1.0)
        assert tm.outgoing_volume(3) == pytest.approx(0.9)
        assert tm.incoming_volume(3) == pytest.approx(1.5)

    def test_pairs_and_items(self, tm):
        assert set(tm.pairs()) == {(1, 3), (3, 4), (2, 3)}
        assert dict(tm.items())[(1, 3)] == 1.0

    def test_network_load(self, fig1, fig1_tm):
        # Total demand 1.9 over total capacity 4.
        assert fig1_tm.network_load(fig1) == pytest.approx(1.9 / 4.0)

    def test_dense_matrix(self, fig1, fig1_tm):
        dense = fig1_tm.matrix(fig1)
        assert dense.shape == (4, 4)
        assert dense.sum() == pytest.approx(1.9)
        assert dense[fig1.node_index(1), fig1.node_index(3)] == pytest.approx(1.0)


class TestTransformations:
    def test_scaled(self):
        tm = TrafficMatrix({(1, 2): 2.0})
        assert tm.scaled(1.5)[(1, 2)] == pytest.approx(3.0)
        with pytest.raises(DemandError):
            tm.scaled(-1.0)

    def test_scaled_to_zero_is_empty_volume(self):
        tm = TrafficMatrix({(1, 2): 2.0})
        assert tm.scaled(0.0).total_volume() == 0.0

    def test_restricted_to(self):
        tm = TrafficMatrix({(1, 2): 1.0, (2, 3): 1.0, (3, 4): 1.0})
        restricted = tm.restricted_to({1, 2, 3})
        assert set(restricted.pairs()) == {(1, 2), (2, 3)}

    def test_validate_against_network(self, fig1):
        tm = TrafficMatrix({(1, 99): 1.0})
        with pytest.raises(DemandError):
            tm.validate(fig1)

    def test_validate_passes(self, fig1, fig1_tm):
        fig1_tm.validate(fig1)  # does not raise

    def test_equality(self):
        a = TrafficMatrix({(1, 2): 1.0})
        b = TrafficMatrix({(1, 2): 1.0})
        c = TrafficMatrix({(1, 2): 2.0})
        assert a == b
        assert a != c
        assert a != "not a matrix"

    def test_network_load_requires_capacity(self):
        from repro.network.graph import Network

        empty = Network()
        tm = TrafficMatrix({(1, 2): 1.0})
        with pytest.raises(DemandError):
            tm.network_load(empty)
