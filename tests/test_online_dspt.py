"""Golden equivalence of the dynamic SPT engine against cold Dijkstra.

:class:`~repro.online.DynamicSPT` must maintain, under arbitrary event
sequences, exactly the state a cold
:func:`~repro.network.spt.shortest_path_dag` build produces on the pruned
network: identical distances (bit-for-bit, not just close), identical
equal-cost next-hop sets, and therefore identical routed link loads.  These
properties are checked on Hypothesis-generated topologies and event
sequences — weight changes, failures, recoveries, disconnections — for both
the incremental regime (strictly positive weights) and the fallback regime
(zero-weight plateaus), plus hand-built corners.
"""

from __future__ import annotations


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.graph import Network, NetworkError
from repro.network.spt import shortest_path_dag
from repro.online import DynamicSPT
from repro.solvers.assignment import ecmp_assignment
from repro.network.demands import TrafficMatrix

TOLERANCE = 1e-9

#: Strictly positive pool (incremental regime); duplicates create ECMP ties.
POSITIVE_POOL = (0.5, 1.0, 1.0, 2.0, 3.0)
#: Pool with zeros: plateau states that force the full-rebuild fallback.
PLATEAU_POOL = (0.0, 0.0, 1.0, 2.0)


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def topology(draw, pool=POSITIVE_POOL) -> tuple[Network, np.ndarray]:
    """A small random directed network seeded with a ring for reachability."""
    n = draw(st.integers(min_value=3, max_value=6))
    edges: dict[tuple[int, int], None] = {}
    for i in range(n):
        edges[(i, (i + 1) % n)] = None
    extra = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=2 * n,
        )
    )
    for edge in extra:
        edges[edge] = None
    net = Network(name="hypothesis")
    for node in range(n):
        net.add_node(node)
    for u, v in edges:
        net.add_link(u, v, capacity=10.0)
    weights = np.array(
        draw(
            st.lists(
                st.sampled_from(pool),
                min_size=net.num_links,
                max_size=net.num_links,
            )
        )
    )
    return net, weights


@st.composite
def event_sequence(draw, net: Network, pool=POSITIVE_POOL) -> list[tuple[str, int, float]]:
    """``(op, link_index, value)`` triples; ops are fail/recover/weight."""
    length = draw(st.integers(min_value=1, max_value=6))
    ops = []
    for _ in range(length):
        op = draw(st.sampled_from(["fail", "recover", "weight"]))
        index = draw(st.integers(0, net.num_links - 1))
        value = draw(st.sampled_from(pool)) if op == "weight" else 0.0
        ops.append((op, index, value))
    return ops


def cold_state(net: Network, weights: np.ndarray, failed: set, destination):
    """Cold DAG on the pruned network (same link insertion order)."""
    pruned = Network(name="pruned")
    for node in net.nodes:
        pruned.add_node(node)
    weight_map = {}
    for link in net.links:
        if link.endpoints in failed:
            continue
        pruned.add_link(link.source, link.target, link.capacity, link.delay)
        weight_map[link.endpoints] = float(weights[link.index])
    return pruned, shortest_path_dag(pruned, destination, weight_map)


def replay(spt: DynamicSPT, net: Network, weights: np.ndarray, ops, failed: set) -> None:
    """Apply one op to the engine and mirror it in (weights, failed)."""
    op, index, value = ops
    link = net.links[index]
    if op == "fail":
        spt.fail_link(link.source, link.target)
        failed.add(link.endpoints)
    elif op == "recover":
        spt.recover_link(link.source, link.target)
        failed.discard(link.endpoints)
    else:
        spt.set_weight(link.source, link.target, value)
        weights[index] = value


def assert_matches_cold(spt: DynamicSPT, net: Network, weights, failed) -> None:
    for destination in net.nodes:
        _, cold = cold_state(net, weights, failed, destination)
        live = spt.dag(destination)
        assert live.distances == cold.distances
        assert live.next_hops == cold.next_hops


# ----------------------------------------------------------------------
# property-based equivalence
# ----------------------------------------------------------------------
class TestEventSequenceEquivalence:
    @given(data=st.data())
    @settings(max_examples=40)
    def test_positive_weights_match_cold_after_every_event(self, data):
        net, weights = data.draw(topology())
        spt = DynamicSPT(net, weights, destinations=net.nodes)
        failed: set = set()
        for ops in data.draw(event_sequence(net)):
            replay(spt, net, weights, ops, failed)
            assert_matches_cold(spt, net, weights, failed)

    @given(data=st.data())
    @settings(max_examples=25)
    def test_plateau_weights_fall_back_and_match_cold(self, data):
        """Zero-weight plateaus disable incremental updates, not correctness."""
        net, weights = data.draw(topology(pool=PLATEAU_POOL))
        spt = DynamicSPT(net, weights, destinations=net.nodes)
        failed: set = set()
        for ops in data.draw(event_sequence(net, pool=PLATEAU_POOL)):
            replay(spt, net, weights, ops, failed)
        assert_matches_cold(spt, net, weights, failed)

    @given(data=st.data())
    @settings(max_examples=25)
    def test_verified_mode_never_mismatches(self, data):
        """The incremental path agrees with its own shadow rebuild."""
        net, weights = data.draw(topology())
        spt = DynamicSPT(net, weights, destinations=net.nodes, verify=True)
        failed: set = set()
        for ops in data.draw(event_sequence(net)):
            replay(spt, net, weights, ops, failed)
        assert spt.stats.verify_mismatches == 0
        assert_matches_cold(spt, net, weights, failed)

    @given(data=st.data())
    @settings(max_examples=25)
    def test_ecmp_loads_match_python_oracle_after_events(self, data):
        """Fused single-pass routing equals the dict-loop oracle to 1e-9."""
        net, weights = data.draw(topology())
        spt = DynamicSPT(net, weights, destinations=net.nodes)
        failed: set = set()
        for ops in data.draw(event_sequence(net)):
            replay(spt, net, weights, ops, failed)

        tm = TrafficMatrix()
        for source in net.nodes:
            for target in net.nodes:
                if source != target:
                    tm.add(source, target, 1.0 + 0.25 * net.node_index(source))

        total = np.zeros(net.num_links)
        dropped_total = 0.0
        routable = TrafficMatrix()
        for destination in net.nodes:
            entering = tm.toward(destination)
            if not entering:
                continue
            loads, dropped = spt.ecmp_link_loads(destination, entering)
            total += loads
            dropped_total += sum(dropped.values())
            for source, volume in entering.items():
                if source not in dropped:
                    routable.add(source, destination, volume)

        pruned, _ = cold_state(net, weights, failed, net.nodes[0])
        weight_map = {
            link.endpoints: float(weights[net.link_index(*link.endpoints)])
            for link in pruned.links
        }
        oracle = ecmp_assignment(pruned, routable, weight_map, backend="python")
        mapped = np.zeros(net.num_links)
        aggregate = oracle.aggregate()
        for link in pruned.links:
            mapped[net.link_index(link.source, link.target)] = aggregate[link.index]
        np.testing.assert_allclose(total, mapped, atol=TOLERANCE, rtol=0)
        assert dropped_total == pytest.approx(tm.total_volume() - routable.total_volume())


# ----------------------------------------------------------------------
# corners and API behaviour
# ----------------------------------------------------------------------
class TestDynamicSptCorners:
    def make_diamond(self):
        net = Network(name="diamond")
        net.add_link(1, 2, 10.0)
        net.add_link(2, 4, 10.0)
        net.add_link(1, 3, 10.0)
        net.add_link(3, 4, 10.0)
        return net

    def test_fail_recover_roundtrip_restores_state(self):
        net = self.make_diamond()
        spt = DynamicSPT(net, np.ones(net.num_links), destinations=[4])
        before = (spt.distances(4), {n: list(h) for n, h in spt.dag(4).next_hops.items()})
        assert spt.fail_link(1, 2) == {4}
        assert spt.dag(4).next_hops[1] == [3]
        assert spt.recover_link(1, 2) == {4}
        after = (spt.distances(4), {n: list(h) for n, h in spt.dag(4).next_hops.items()})
        assert before == after

    def test_disconnection_drops_nodes_from_state(self):
        net = Network(name="line")
        net.add_link(1, 2, 5.0)
        net.add_link(2, 3, 5.0)
        spt = DynamicSPT(net, [1.0, 1.0], destinations=[3])
        spt.fail_link(2, 3)
        assert spt.reachable(3, 3)
        assert not spt.reachable(1, 3) and not spt.reachable(2, 3)
        assert 1 not in spt.dag(3).next_hops
        spt.recover_link(2, 3)
        assert spt.reachable(1, 3)
        assert spt.distances(3)[1] == 2.0

    def test_weight_decrease_creates_ecmp_tie(self):
        net = self.make_diamond()
        spt = DynamicSPT(net, [1.0, 1.0, 2.0, 1.0], destinations=[4])
        assert spt.dag(4).next_hops[1] == [2]
        changed = spt.set_weight(1, 3, 1.0)
        assert changed == {4}
        assert spt.dag(4).next_hops[1] == [2, 3]

    def test_weight_increase_not_tight_only_refreshes_ecmp(self):
        net = self.make_diamond()
        spt = DynamicSPT(net, np.ones(net.num_links), destinations=[4])
        assert spt.dag(4).next_hops[1] == [2, 3]
        changed = spt.set_weight(1, 3, 3.0)
        assert changed == {4}
        assert spt.dag(4).next_hops[1] == [2]
        assert spt.distances(4)[1] == 2.0

    def test_fail_noop_for_already_failed_link(self):
        net = self.make_diamond()
        spt = DynamicSPT(net, np.ones(net.num_links), destinations=[4])
        assert spt.fail_link(1, 2) == {4}
        assert spt.fail_link(1, 2) == set()
        assert spt.failed_links() == [(1, 2)]
        assert not spt.is_active(1, 2)

    def test_set_weights_rebuilds_everything(self):
        net = self.make_diamond()
        spt = DynamicSPT(net, np.ones(net.num_links), destinations=[2, 4])
        rebuilds = spt.stats.full_rebuilds
        assert spt.set_weights([2.0, 1.0, 1.0, 2.0]) == {2, 4}
        assert spt.stats.full_rebuilds == rebuilds + 2

    def test_add_destination_later(self):
        net = self.make_diamond()
        spt = DynamicSPT(net, np.ones(net.num_links), destinations=[4])
        spt.add_destination(2)
        assert spt.distances(2)[1] == 1.0

    def test_validation_errors(self):
        net = self.make_diamond()
        spt = DynamicSPT(net, np.ones(net.num_links), destinations=[4])
        with pytest.raises(NetworkError):
            spt.set_weight(1, 2, -1.0)
        with pytest.raises(NetworkError):
            spt.set_weight(1, 2, float("nan"))
        with pytest.raises(NetworkError):
            spt.fail_link(1, 4)  # no such link
        with pytest.raises(NetworkError):
            spt.distances(1)  # not a maintained destination
        with pytest.raises(ValueError):
            DynamicSPT(net, np.ones(net.num_links), max_affected_fraction=0.0)

    def test_weight_change_on_failed_link_applies_on_recovery(self):
        net = self.make_diamond()
        spt = DynamicSPT(net, np.ones(net.num_links), destinations=[4])
        spt.fail_link(1, 2)
        assert spt.set_weight(1, 2, 5.0) == set()  # masked: no DAG change yet
        spt.recover_link(1, 2)
        assert spt.dag(4).next_hops[1] == [3]  # came back at weight 5

    def test_stats_accumulate(self):
        net = self.make_diamond()
        spt = DynamicSPT(net, np.ones(net.num_links), destinations=[4])
        spt.fail_link(1, 2)
        spt.recover_link(1, 2)
        assert spt.stats.events == 2
        assert spt.stats.destinations_changed == 2
        assert spt.stats.incremental_updates >= 2


# ----------------------------------------------------------------------
# scoped plateau fallback + per-event stats (the PR-7 bugfixes)
# ----------------------------------------------------------------------
class TestScopedPlateauFallback:
    """The plateau-floor fallback only fires near the affected cone.

    Regression cover: a sub-floor weight *anywhere* in the graph used to
    force a verified full rebuild on every event; the scoped criterion only
    falls back when the event's refresh set or moved distance range can see
    a usable plateau endpoint.
    """

    def make_line(self, tiny: float = 1e-13):
        """Duplex line 0-1-...-9 with one plateau link (8, 9) at ``tiny``."""
        net = Network(name="line10")
        for i in range(10):
            net.add_node(i)
        for i in range(9):
            net.add_duplex_link(i, i + 1, 10.0)
        weights = np.ones(net.num_links)
        weights[net.link_index(8, 9)] = tiny
        return net, weights

    def test_far_tiny_weight_no_plateau_fallback(self):
        net, weights = self.make_line()
        spt = DynamicSPT(net, weights.copy(), destinations=[9], tolerance=TOLERANCE)
        assert not spt.plateau_free
        mirror, failed = weights.copy(), set()
        # Fail / recover / retune links next to node 0 — nine hops away from
        # the plateau link, far outside any affected cone.
        for ops in [("fail", net.link_index(0, 1), 0.0),
                    ("recover", net.link_index(0, 1), 0.0),
                    ("weight", net.link_index(1, 0), 2.5)]:
            replay(spt, net, mirror, ops, failed)
        assert spt.stats.fallback_plateau == 0
        assert spt.stats.event_fallbacks == 0
        _, cold = cold_state(net, mirror, failed, 9)
        live = spt.dag(9)
        assert live.distances == cold.distances
        assert live.next_hops == cold.next_hops

    def test_event_near_plateau_still_falls_back(self):
        net, weights = self.make_line()
        spt = DynamicSPT(net, weights.copy(), destinations=[9], tolerance=TOLERANCE)
        mirror, failed = weights.copy(), set()
        # Improving (7, 8) moves distances right next to the plateau link:
        # the scoped check must refuse the incremental shortcut...
        replay(spt, net, mirror, ("weight", net.link_index(7, 8), 0.5), failed)
        assert spt.stats.fallback_plateau >= 1
        # ...and the verified rebuild still matches the cold DAG exactly.
        _, cold = cold_state(net, mirror, failed, 9)
        live = spt.dag(9)
        assert live.distances == cold.distances
        assert live.next_hops == cold.next_hops


class TestStatsUnits:
    def test_event_fallback_rate_counts_events_not_updates(self):
        from repro.online.dspt import DsptStats

        stats = DsptStats(
            events=4,
            incremental_updates=396,
            fallback_cone=4,
            events_with_fallback=1,
        )
        # The deprecated per-update rate drowns one bad event in the other
        # destinations' incremental updates; the per-event rate does not.
        with pytest.warns(DeprecationWarning):
            assert stats.fallback_rate == pytest.approx(4 / 400)
        assert stats.event_fallback_rate == pytest.approx(1 / 4)

    def test_rates_zero_when_idle(self):
        from repro.online.dspt import DsptStats

        stats = DsptStats()
        with pytest.warns(DeprecationWarning):
            assert stats.fallback_rate == 0.0
        assert stats.event_fallback_rate == 0.0

    def test_fallback_rate_is_deprecated_but_value_unchanged(self):
        from repro.online.dspt import DsptStats

        stats = DsptStats(events=4, incremental_updates=396, fallback_cone=4)
        with pytest.warns(DeprecationWarning, match="fallback_rate is deprecated"):
            deprecated = stats.fallback_rate
        # The deprecation changes the access path, never the value.
        assert deprecated == stats._per_update_fallback_rate()
        # repr still reports the historical rate without tripping the warning.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert "fallback_rate=" in repr(stats)


class TestTunedMaxAffectedFraction:
    def test_dense_graphs_get_the_high_threshold(self):
        from repro.online.dspt import (
            DENSE_CONE_FRACTION,
            SPARSE_CONE_FRACTION,
            tuned_max_affected_fraction,
        )
        from repro.topology.backbones import abilene_network
        from repro.topology.generators import rand100, rand500

        assert tuned_max_affected_fraction(rand100()) == DENSE_CONE_FRACTION
        assert tuned_max_affected_fraction(rand500()) == DENSE_CONE_FRACTION
        # Abilene: 11 nodes — small backbones keep the conservative default.
        assert tuned_max_affected_fraction(abilene_network()) == SPARSE_CONE_FRACTION

    def test_engine_defaults_to_the_tuned_threshold(self):
        from repro.online.dspt import tuned_max_affected_fraction
        from repro.topology.generators import rand100

        net = rand100()
        dest = net.nodes[0]
        spt = DynamicSPT(net, np.ones(net.num_links), destinations=[dest])
        assert spt.max_affected_fraction == tuned_max_affected_fraction(net)
        pinned = DynamicSPT(
            net, np.ones(net.num_links), destinations=[dest], max_affected_fraction=0.25
        )
        assert pinned.max_affected_fraction == 0.25
