"""Unit tests for the topologies (paper examples, backbones, generators, rocketfuel)."""

import numpy as np
import pytest

from repro.topology.backbones import (
    abilene_network,
    cernet2_backbone_links,
    cernet2_edges,
    cernet2_network,
)
from repro.topology.generators import (
    hier50a,
    hier50b,
    hierarchical_network,
    rand50a,
    rand50b,
    rand100,
    rand500,
    random_network,
)
from repro.topology.paper_examples import (
    FIG4_LINKS,
    fig1_demands,
    fig1_network,
    fig4_demands,
    fig4_link_labels,
    fig4_network,
)
from repro.topology.rocketfuel import (
    ROCKETFUEL_PROFILES,
    ROCKETFUEL_ROUTER_PROFILES,
    degree_profile,
    parse_rocketfuel,
    synthetic_rocketfuel,
    write_rocketfuel,
)


class TestPaperExamples:
    def test_fig1_structure(self):
        net = fig1_network()
        assert net.num_nodes == 4
        assert net.num_links == 4
        assert np.allclose(net.capacities, 1.0)

    def test_fig1_capacity_scaling(self):
        net = fig1_network(capacity_scale=5.0)
        assert np.allclose(net.capacities, 5.0)

    def test_fig1_demands(self):
        tm = fig1_demands()
        assert tm[(1, 3)] == 1.0
        assert tm[(3, 4)] == 0.9
        tm.validate(fig1_network())

    def test_fig4_structure(self):
        net = fig4_network()
        assert net.num_nodes == 7
        assert net.num_links == 13
        assert np.allclose(net.capacities, 5.0)

    def test_fig4_demands_reach_destinations(self):
        net, tm = fig4_network(), fig4_demands()
        tm.validate(net)
        assert tm.total_volume() == pytest.approx(16.0)
        # Every demand must be routable.
        from repro.solvers.mcf import solve_min_mlu

        assert solve_min_mlu(net, tm).objective < 1.0

    def test_fig4_demand_scaling(self):
        tm = fig4_demands(volume=2.0)
        assert tm[(1, 2)] == pytest.approx(2.0)

    def test_fig4_link_labels(self):
        labels = fig4_link_labels(fig4_network())
        assert set(labels) == set(range(1, 14))
        assert labels == FIG4_LINKS


class TestBackbones:
    def test_abilene_matches_table3(self):
        net = abilene_network()
        assert net.num_nodes == 11
        assert net.num_links == 28
        assert np.allclose(net.capacities, 10.0)
        assert net.is_strongly_connected()

    def test_cernet2_matches_table3(self):
        net = cernet2_network()
        assert net.num_nodes == 20
        assert net.num_links == 44
        assert net.is_strongly_connected()

    def test_cernet2_capacity_classes(self):
        net = cernet2_network()
        capacities = sorted(set(net.capacities))
        assert capacities == [2.5, 10.0]
        backbone = cernet2_backbone_links()
        assert len(backbone) == 4
        for u, v in backbone:
            assert net.capacity_of(u, v) == 10.0

    def test_cernet2_edges_count(self):
        assert len(cernet2_edges()) == 22


class TestGenerators:
    def test_random_network_counts(self):
        net = random_network(20, 80, seed=5)
        assert net.num_nodes == 20
        assert net.num_links == 80
        assert net.is_strongly_connected()

    def test_random_network_deterministic(self):
        a = random_network(20, 80, seed=5)
        b = random_network(20, 80, seed=5)
        assert a.edges == b.edges

    def test_random_network_seed_changes_topology(self):
        a = random_network(20, 80, seed=5)
        b = random_network(20, 80, seed=6)
        assert a.edges != b.edges

    def test_random_network_validation(self):
        with pytest.raises(ValueError):
            random_network(10, 81)  # odd
        with pytest.raises(ValueError):
            random_network(10, 10)  # too few for connectivity
        with pytest.raises(ValueError):
            random_network(5, 100)  # too many

    def test_hierarchical_capacities(self):
        net = hierarchical_network(20, 80, num_transit=5, seed=1)
        capacities = set(net.capacities)
        assert capacities <= {1.0, 5.0}
        assert 5.0 in capacities and 1.0 in capacities
        assert net.is_strongly_connected()

    def test_hierarchical_validation(self):
        with pytest.raises(ValueError):
            hierarchical_network(20, 81)
        with pytest.raises(ValueError):
            hierarchical_network(10, 40, num_transit=10)
        with pytest.raises(ValueError):
            hierarchical_network(50, 60, num_transit=10)  # below connectivity need

    @pytest.mark.parametrize(
        "builder, nodes, links",
        [
            (hier50a, 50, 222),
            (hier50b, 50, 152),
            (rand50a, 50, 242),
            (rand50b, 50, 230),
            (rand100, 100, 392),
            (rand500, 500, 2000),
        ],
    )
    def test_table3_instances(self, builder, nodes, links):
        net = builder()
        assert net.num_nodes == nodes
        assert net.num_links == links
        assert net.is_strongly_connected()


class TestRocketfuel:
    def test_synthetic_profile_sizes(self):
        net = synthetic_rocketfuel(1755)
        name, nodes, links = ROCKETFUEL_PROFILES[1755]
        assert net.num_nodes == nodes
        assert net.num_links == links

    def test_router_level_profile_sizes(self):
        net = synthetic_rocketfuel(1239, level="router")
        name, nodes, links = ROCKETFUEL_ROUTER_PROFILES[1239]
        assert net.num_nodes == nodes
        assert net.num_links == links
        assert net.name == "AS1239-Sprint-R"
        assert net.is_strongly_connected()

    def test_router_profiles_larger_than_pop(self):
        for asn, (_, pop_nodes, _) in ROCKETFUEL_PROFILES.items():
            assert ROCKETFUEL_ROUTER_PROFILES[asn][1] > pop_nodes

    def test_unknown_asn_rejected(self):
        with pytest.raises(ValueError):
            synthetic_rocketfuel(9999)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            synthetic_rocketfuel(1239, level="metro")

    def test_synthetic_deterministic_under_fixed_seed(self):
        a = synthetic_rocketfuel(3257, seed=7)
        b = synthetic_rocketfuel(3257, seed=7)
        assert a.edges == b.edges
        assert list(a.capacities) == list(b.capacities)
        assert a.edges != synthetic_rocketfuel(3257, seed=8).edges

    def test_roundtrip_through_file(self, tmp_path):
        net = synthetic_rocketfuel(6461)
        path = tmp_path / "as6461.txt"
        write_rocketfuel(net, path)
        parsed = parse_rocketfuel(path, duplex=False)
        assert parsed.num_nodes == net.num_nodes
        assert parsed.num_links == net.num_links
        # The exact edge list and capacities survive the round trip (node
        # identifiers come back as strings).
        assert [(str(u), str(v)) for u, v in net.edges] == parsed.edges
        assert [link.capacity for link in net.links] == [
            link.capacity for link in parsed.links
        ]

    def test_parse_adds_reverse_links_in_duplex_mode(self, tmp_path):
        path = tmp_path / "tiny.txt"
        path.write_text("# comment\na b 4\nb c\n")
        net = parse_rocketfuel(path, default_capacity=2.0)
        assert net.num_links == 4
        assert net.capacity_of("a", "b") == 4.0
        assert net.capacity_of("c", "b") == 2.0

    def test_parse_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("only_one_token\n")
        with pytest.raises(ValueError):
            parse_rocketfuel(path)

    def test_degree_profile(self):
        profile = degree_profile(abilene_network())
        assert profile["min_degree"] >= 1
        assert profile["max_degree"] <= 11
        assert profile["mean_degree"] == pytest.approx(28 / 11)
