"""Unit tests for shortest-path machinery (Dijkstra, ECMP DAGs, tolerance)."""

import numpy as np
import pytest

from repro.network.graph import NetworkError
from repro.network.spt import (
    UnreachableError,
    all_shortest_path_dags,
    as_weight_vector,
    distances_to,
    path_cost,
    shortest_path_dag,
    shortest_path_length,
    shortest_paths,
)


class TestWeightConversion:
    def test_mapping_accepted(self, diamond_network):
        vector = as_weight_vector(diamond_network, {(1, 2): 2.0})
        assert vector[diamond_network.link_index(1, 2)] == 2.0

    def test_vector_accepted(self, diamond_network):
        vector = as_weight_vector(diamond_network, np.ones(4))
        assert np.allclose(vector, 1.0)

    def test_bad_length_rejected(self, diamond_network):
        with pytest.raises(NetworkError):
            as_weight_vector(diamond_network, [1.0, 2.0])

    def test_negative_weights_rejected(self, diamond_network):
        with pytest.raises(NetworkError):
            distances_to(diamond_network, 4, -np.ones(4))

    def test_nan_weights_rejected(self, diamond_network):
        weights = np.ones(4)
        weights[0] = np.nan
        with pytest.raises(NetworkError):
            distances_to(diamond_network, 4, weights)


class TestDistances:
    def test_distances_on_line(self, line_network):
        dist = distances_to(line_network, 4, np.ones(3))
        assert dist == {4: 0.0, 3: 1.0, 2: 2.0, 1: 3.0}

    def test_unreachable_nodes_absent(self, line_network):
        # Line is directed 1->2->3->4, so node 1 is unreachable from 4's
        # perspective looking forward -- i.e. distances *to* node 1.
        dist = distances_to(line_network, 1, np.ones(3))
        assert dist == {1: 0.0}

    def test_weighted_distances(self, diamond_network):
        weights = {(1, 2): 1.0, (2, 4): 1.0, (1, 3): 5.0, (3, 4): 5.0}
        dist = distances_to(diamond_network, 4, weights)
        assert dist[1] == pytest.approx(2.0)

    def test_shortest_path_length(self, diamond_network):
        assert shortest_path_length(diamond_network, 1, 4, np.ones(4)) == pytest.approx(2.0)

    def test_shortest_path_length_unreachable(self, line_network):
        with pytest.raises(UnreachableError):
            shortest_path_length(line_network, 4, 1, np.ones(3))


class TestDag:
    def test_diamond_has_two_equal_paths(self, diamond_network):
        dag = shortest_path_dag(diamond_network, 4, np.ones(4))
        assert set(dag.next_hops_of(1)) == {2, 3}
        assert dag.count_paths()[1] == 2
        paths = dag.paths_from(1)
        assert sorted(paths) == [[1, 2, 4], [1, 3, 4]]

    def test_unequal_weights_single_path(self, diamond_network):
        weights = {(1, 2): 1.0, (2, 4): 1.0, (1, 3): 2.0, (3, 4): 2.0}
        dag = shortest_path_dag(diamond_network, 4, weights)
        assert dag.next_hops_of(1) == [2]
        assert dag.count_paths()[1] == 1

    def test_tolerance_merges_near_equal_paths(self, diamond_network):
        weights = {(1, 2): 1.0, (2, 4): 1.0, (1, 3): 1.1, (3, 4): 1.1}
        strict = shortest_path_dag(diamond_network, 4, weights, tolerance=1e-9)
        loose = shortest_path_dag(diamond_network, 4, weights, tolerance=0.3)
        assert len(strict.next_hops_of(1)) == 1
        assert len(loose.next_hops_of(1)) == 2

    def test_dag_edges_and_reachability(self, diamond_network):
        dag = shortest_path_dag(diamond_network, 4, np.ones(4))
        assert set(dag.edges()) == {(1, 2), (1, 3), (2, 4), (3, 4)}
        assert dag.reachable(1)
        assert dag.distance(1) == pytest.approx(2.0)

    def test_distance_of_unreachable_raises(self, line_network):
        dag = shortest_path_dag(line_network, 1, np.ones(3))
        with pytest.raises(UnreachableError):
            dag.distance(4)

    def test_paths_from_unreachable_raises(self, line_network):
        dag = shortest_path_dag(line_network, 1, np.ones(3))
        with pytest.raises(UnreachableError):
            dag.paths_from(4)

    def test_paths_limit(self, diamond_network):
        dag = shortest_path_dag(diamond_network, 4, np.ones(4))
        assert len(dag.paths_from(1, limit=1)) == 1

    def test_nodes_by_decreasing_distance(self, line_network):
        dag = shortest_path_dag(line_network, 4, np.ones(3))
        order = dag.nodes_by_decreasing_distance()
        assert order == [1, 2, 3, 4]

    def test_all_shortest_path_dags(self, triangle_network):
        dags = all_shortest_path_dags(triangle_network, [1, 2, 3], np.ones(6))
        assert set(dags) == {1, 2, 3}
        for destination, dag in dags.items():
            assert dag.destination == destination

    def test_dag_is_acyclic(self, fig4):
        weights = np.ones(fig4.num_links)
        for destination in fig4.nodes:
            dag = shortest_path_dag(fig4, destination, weights)
            # Following next hops must strictly decrease distance: no cycles.
            for node, hops in dag.next_hops.items():
                for hop in hops:
                    assert dag.distances[hop] <= dag.distances[node]


class TestPaths:
    def test_shortest_paths_wrapper(self, diamond_network):
        paths = shortest_paths(diamond_network, 1, 4, np.ones(4))
        assert len(paths) == 2

    def test_path_cost(self, diamond_network):
        weights = {(1, 2): 1.5, (2, 4): 2.5, (1, 3): 1.0, (3, 4): 1.0}
        assert path_cost(diamond_network, [1, 2, 4], weights) == pytest.approx(4.0)

    def test_zero_weight_links_allowed(self, fig1):
        # Table I's beta=0 column assigns weight 0 to link (2, 3).
        weights = {(1, 3): 2.0, (3, 4): 1.0, (1, 2): 1.0, (2, 3): 0.0}
        dist = distances_to(fig1, 3, weights)
        assert dist[1] == pytest.approx(1.0)
        assert dist[2] == pytest.approx(0.0)
