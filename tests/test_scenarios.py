"""Scenario engine tests: generators, apply semantics, runner and cache.

The load-bearing properties are *determinism* (same seed => identical
scenario set, identical fingerprints) and *cache transparency* (cached and
fresh runner results are indistinguishable) — both are what make the batch
runner's on-disk cache sound, so they are tested property-based.
"""

from __future__ import annotations

import math
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.demands import TrafficMatrix
from repro.network.graph import Network
from repro.scenarios import (
    BatchRunner,
    ProtocolSpec,
    ResultCache,
    RunnerError,
    Scenario,
    ScenarioError,
    baseline_scenario,
    capacity_degradations,
    combine,
    cvar,
    demands_fingerprint,
    distribution_summary,
    dual_link_failures,
    evaluate_scenario,
    gravity_noise_ensemble,
    hotspot_surge_ensemble,
    network_fingerprint,
    node_failures,
    regret_rows,
    robustness_summary,
    single_link_failures,
    standard_scenario_suite,
    uniform_scaling_ensemble,
    worst_case,
)
from repro.topology.backbones import abilene_network


@pytest.fixture(scope="module")
def abilene_small_tm() -> TrafficMatrix:
    from repro.traffic.fortz_thorup_tm import abilene_traffic_matrix

    net = abilene_network()
    base = abilene_traffic_matrix(net, total_volume=1.0, seed=1)
    return base.scaled(0.10 * net.total_capacity())


# ----------------------------------------------------------------------
# Scenario model
# ----------------------------------------------------------------------
class TestScenario:
    def test_baseline_is_identity(self, abilene_small_tm):
        net = abilene_network()
        instance = baseline_scenario().apply(net, abilene_small_tm)
        assert instance.network.edges == net.edges
        assert instance.demands == abilene_small_tm
        assert instance.fully_connected
        assert instance.dropped_volume == 0.0

    def test_link_failure_removes_both_directions(self, abilene_small_tm):
        net = abilene_network()
        scenario = single_link_failures(net)[0]
        instance = scenario.apply(net, abilene_small_tm)
        assert instance.network.num_links == net.num_links - 2
        for edge in scenario.failed_links:
            assert not instance.network.has_link(*edge)

    def test_node_failure_drops_demands_of_the_node(self, abilene_small_tm):
        net = abilene_network()
        scenario = Scenario(scenario_id="node:1", kind="node-failure", failed_nodes=(1,))
        instance = scenario.apply(net, abilene_small_tm)
        assert all(1 not in pair for pair in instance.demands.pairs())
        expected_drop = abilene_small_tm.outgoing_volume(1) + abilene_small_tm.incoming_volume(1)
        assert instance.dropped_volume == pytest.approx(expected_drop)
        # The failed node keeps its graph slot but loses every incident link.
        assert instance.network.has_node(1)
        assert not instance.network.out_links(1) and not instance.network.in_links(1)

    def test_disconnection_drops_unroutable_demands(self):
        net = Network(name="line")
        net.add_link("a", "b", 10.0)
        net.add_link("b", "c", 10.0)
        tm = TrafficMatrix({("a", "c"): 3.0, ("a", "b"): 1.0})
        scenario = Scenario(scenario_id="cut", kind="link-failure", failed_links=(("b", "c"),))
        instance = scenario.apply(net, tm)
        assert instance.dropped_pairs == (("a", "c"),)
        assert instance.dropped_volume == pytest.approx(3.0)
        assert instance.demands == TrafficMatrix({("a", "b"): 1.0})

    def test_capacity_factor_scales_and_zero_removes(self):
        net = Network(name="pair")
        net.add_duplex_link("a", "b", 10.0)
        scenario = Scenario(
            scenario_id="deg",
            kind="capacity",
            capacity_factors=((("a", "b"), 0.5), (("b", "a"), 0.0)),
        )
        instance = scenario.apply(net, TrafficMatrix({("a", "b"): 1.0}))
        assert instance.network.capacity_of("a", "b") == pytest.approx(5.0)
        assert not instance.network.has_link("b", "a")

    def test_demand_scale_and_factors_compose(self):
        net = Network(name="pair")
        net.add_duplex_link("a", "b", 10.0)
        tm = TrafficMatrix({("a", "b"): 2.0, ("b", "a"): 1.0})
        scenario = Scenario(
            scenario_id="surge",
            kind="demand",
            demand_scale=2.0,
            demand_factors=((("a", "b"), 1.5),),
        )
        instance = scenario.apply(net, tm)
        assert instance.demands[("a", "b")] == pytest.approx(6.0)
        assert instance.demands[("b", "a")] == pytest.approx(2.0)

    def test_unknown_link_or_node_raises(self, abilene_small_tm):
        net = abilene_network()
        with pytest.raises(ScenarioError):
            Scenario(scenario_id="x", failed_links=((1, 99),)).apply(net, abilene_small_tm)
        with pytest.raises(ScenarioError):
            Scenario(scenario_id="x", failed_nodes=(99,)).apply(net, abilene_small_tm)

    def test_negative_factors_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario(scenario_id="x", demand_scale=-1.0)
        with pytest.raises(ScenarioError):
            Scenario(scenario_id="x", capacity_factors=(((1, 2), -0.5),))

    def test_combine_merges_perturbations(self):
        net = abilene_network()
        failure = single_link_failures(net)[0]
        surge = uniform_scaling_ensemble([1.5])[0]
        both = combine(failure, surge)
        assert both.kind == "compound"
        assert both.failed_links == failure.failed_links
        assert both.demand_scale == pytest.approx(1.5)

    def test_combine_duplicate_capacity_edges_merge_multiplicatively(self):
        net = Network(name="pair")
        net.add_duplex_link("a", "b", 10.0)
        first = Scenario("half", kind="capacity", capacity_factors=((("a", "b"), 0.5),))
        second = Scenario("fifth", kind="capacity", capacity_factors=((("a", "b"), 0.2),))
        both = combine(first, second)
        # The combined tuple keeps both entries; application (and the online
        # event converter) merges them as the product.
        assert both.capacity_factors == ((("a", "b"), 0.5), (("a", "b"), 0.2))
        assert both.merged_capacity_factors() == {("a", "b"): pytest.approx(0.1)}
        instance = both.apply(net, TrafficMatrix({("a", "b"): 0.5}))
        assert instance.network.capacity_of("a", "b") == pytest.approx(1.0)
        # A product of zero removes the link — same rule as a bare factor 0.
        dead = combine(first, Scenario("kill", capacity_factors=((("a", "b"), 0.0),)))
        assert not dead.apply(net, TrafficMatrix({("b", "a"): 0.5})).network.has_link("a", "b")

    def test_fingerprint_distinguishes_and_ignores_seed(self):
        a = Scenario(scenario_id="s", kind="demand", demand_scale=1.5, seed=1)
        b = Scenario(scenario_id="s", kind="demand", demand_scale=1.5, seed=99)
        c = Scenario(scenario_id="s", kind="demand", demand_scale=1.6, seed=1)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()


# ----------------------------------------------------------------------
# Generator determinism (property-based)
# ----------------------------------------------------------------------
class TestGeneratorDeterminism:
    def test_failure_sweeps_are_deterministic(self):
        net = abilene_network()
        assert single_link_failures(net) == single_link_failures(net)
        assert node_failures(net) == node_failures(net)
        assert dual_link_failures(net) == dual_link_failures(net)

    def test_single_link_failures_cover_every_trunk(self):
        net = abilene_network()
        scenarios = single_link_failures(net)
        assert len(scenarios) == 14  # Abilene's bidirectional trunk count
        failed = {edge for s in scenarios for edge in s.failed_links}
        assert failed == set(net.edges)

    @given(seed=st.integers(0, 2**32 - 1), limit=st.integers(1, 30))
    @settings(max_examples=20, deadline=None)
    def test_dual_failure_sampling_deterministic(self, seed, limit):
        net = abilene_network()
        first = dual_link_failures(net, limit=limit, seed=seed)
        second = dual_link_failures(net, limit=limit, seed=seed)
        assert first == second
        assert len(first) == min(limit, 14 * 13 // 2)

    @given(seed=st.integers(0, 2**32 - 1), count=st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_capacity_degradations_deterministic(self, seed, count):
        net = abilene_network()
        first = capacity_degradations(net, count=count, seed=seed)
        second = capacity_degradations(net, count=count, seed=seed)
        assert first == second
        assert [s.fingerprint() for s in first] == [s.fingerprint() for s in second]

    @given(
        seed=st.integers(0, 2**32 - 1),
        size=st.integers(1, 5),
        sigma=st.floats(0.01, 1.0, allow_nan=False),
    )
    @settings(max_examples=20, deadline=None)
    def test_gravity_noise_deterministic_and_total_preserving(
        self, abilene_small_tm, seed, size, sigma
    ):
        first = gravity_noise_ensemble(abilene_small_tm, size=size, sigma=sigma, seed=seed)
        second = gravity_noise_ensemble(abilene_small_tm, size=size, sigma=sigma, seed=seed)
        assert first == second
        net = abilene_network()
        for scenario in first:
            perturbed = scenario.apply(net, abilene_small_tm).demands
            assert perturbed.total_volume() == pytest.approx(
                abilene_small_tm.total_volume(), rel=1e-6
            )

    @given(seed=st.integers(0, 2**32 - 1), size=st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_hotspot_surge_deterministic(self, abilene_small_tm, seed, size):
        first = hotspot_surge_ensemble(abilene_small_tm, size=size, seed=seed)
        second = hotspot_surge_ensemble(abilene_small_tm, size=size, seed=seed)
        assert first == second

    def test_different_seeds_differ(self, abilene_small_tm):
        a = gravity_noise_ensemble(abilene_small_tm, size=3, seed=1)
        b = gravity_noise_ensemble(abilene_small_tm, size=3, seed=2)
        assert a != b

    def test_suite_ids_are_unique(self, abilene_small_tm):
        net = abilene_network()
        suite = standard_scenario_suite(net, abilene_small_tm, ensemble_size=4, seed=0)
        ids = [s.scenario_id for s in suite]
        assert len(ids) == len(set(ids))


# ----------------------------------------------------------------------
# Runner and cache
# ----------------------------------------------------------------------
class TestRunner:
    def test_protocol_spec_registry(self):
        spec = ProtocolSpec.of("SPEF", beta=5.0)
        assert spec.display_name == "SPEF(beta=5.0)"
        protocol = spec.build()
        assert protocol.name == "SPEF5"
        with pytest.raises(RunnerError):
            ProtocolSpec.of("NotAProtocol")

    def test_evaluate_scenario_baseline_matches_direct_route(self, abilene_small_tm):
        net = abilene_network()
        from repro.protocols.ospf import OSPF

        result = evaluate_scenario(
            net, abilene_small_tm, baseline_scenario(), ProtocolSpec.of("OSPF")
        )
        flows = OSPF().route(net, abilene_small_tm)
        assert result.mlu == pytest.approx(flows.max_link_utilization())
        assert result.feasible and result.connected
        assert result.error is None

    def test_results_in_protocol_scenario_order(self, abilene_small_tm):
        net = abilene_network()
        scenarios = [baseline_scenario()] + single_link_failures(net)[:2]
        runner = BatchRunner(cache_dir=False, max_workers=0)
        results = runner.run(net, abilene_small_tm, scenarios, ["OSPF", "MinMaxMLU"])
        assert [r.protocol for r in results] == ["OSPF"] * 3 + ["MinMaxMLU"] * 3
        assert [r.scenario_id for r in results[:3]] == [s.scenario_id for s in scenarios]

    def test_cache_roundtrip_preserves_results(self, tmp_path, abilene_small_tm):
        net = abilene_network()
        cache = ResultCache(tmp_path)
        spec = ProtocolSpec.of("OSPF")
        scenario = single_link_failures(net)[0]
        result = evaluate_scenario(net, abilene_small_tm, scenario, spec)
        key = ResultCache.key(
            network_fingerprint(net), demands_fingerprint(abilene_small_tm), scenario, spec
        )
        cache.put(key, result)
        # A fresh cache object must read it back from disk, marked cached.
        reloaded = ResultCache(tmp_path).get(key)
        assert reloaded is not None and reloaded.cached
        assert reloaded.as_row() == result.as_row()

    def test_warm_run_is_fully_cached_and_identical(self, tmp_path, abilene_small_tm):
        net = abilene_network()
        scenarios = single_link_failures(net)[:5]
        runner = BatchRunner(cache_dir=tmp_path, max_workers=0)
        cold = runner.run(net, abilene_small_tm, scenarios, ["OSPF"])
        assert runner.last_stats.cache_hits == 0
        warm = runner.run(net, abilene_small_tm, scenarios, ["OSPF"])
        assert runner.last_stats.cache_hits == len(scenarios)
        assert runner.last_stats.evaluated == 0
        assert [r.as_row() for r in warm] == [r.as_row() for r in cold]
        assert all(r.cached for r in warm)

    def test_cache_is_keyed_on_demands(self, tmp_path, abilene_small_tm):
        net = abilene_network()
        scenarios = single_link_failures(net)[:2]
        runner = BatchRunner(cache_dir=tmp_path, max_workers=0)
        runner.run(net, abilene_small_tm, scenarios, ["OSPF"])
        runner.run(net, abilene_small_tm.scaled(2.0), scenarios, ["OSPF"])
        assert runner.last_stats.cache_hits == 0  # different matrix, no reuse

    def test_parallel_matches_serial(self, abilene_small_tm):
        net = abilene_network()
        scenarios = single_link_failures(net)[:4]
        serial = BatchRunner(cache_dir=False, max_workers=0).run(
            net, abilene_small_tm, scenarios, ["OSPF"]
        )
        parallel = BatchRunner(cache_dir=False, max_workers=2, chunk_size=2).run(
            net, abilene_small_tm, scenarios, ["OSPF"]
        )
        assert [r.as_row() for r in parallel] == [r.as_row() for r in serial]

    def test_failed_evaluation_is_reported_not_raised(self, abilene_small_tm):
        from repro.scenarios.runner import register_protocol

        class Exploding:
            name = "Exploding"

            def route(self, network, demands):
                raise RuntimeError("boom")

        register_protocol("_Exploding", Exploding)
        try:
            runner = BatchRunner(cache_dir=False, max_workers=0)
            results = runner.run(
                abilene_network(), abilene_small_tm, [baseline_scenario()], ["_Exploding"]
            )
            assert len(results) == 1
            assert not results[0].feasible
            assert results[0].mlu == float("inf")
            assert "boom" in results[0].error
        finally:
            from repro.scenarios.runner import PROTOCOL_REGISTRY

            PROTOCOL_REGISTRY.pop("_Exploding", None)

    def test_error_results_are_not_cached(self, tmp_path, abilene_small_tm):
        """A transient failure must not poison the on-disk cache as infeasible."""
        from repro.scenarios.runner import PROTOCOL_REGISTRY, register_protocol

        class FlakyOnce:
            name = "FlakyOnce"
            calls = 0

            def route(self, network, demands):
                type(self).calls += 1
                if type(self).calls == 1:
                    raise RuntimeError("transient")
                from repro.protocols.ospf import OSPF

                return OSPF().route(network, demands)

        register_protocol("_FlakyOnce", FlakyOnce)
        try:
            runner = BatchRunner(cache_dir=tmp_path, max_workers=0)
            net = abilene_network()
            first = runner.run(net, abilene_small_tm, [baseline_scenario()], ["_FlakyOnce"])
            assert first[0].error is not None
            second = runner.run(net, abilene_small_tm, [baseline_scenario()], ["_FlakyOnce"])
            assert second[0].error is None  # re-evaluated, not served stale
            assert second[0].feasible
        finally:
            PROTOCOL_REGISTRY.pop("_FlakyOnce", None)

    def test_all_demands_dropped_yields_zero_mlu_not_an_error(self):
        """A cut that strands every demand is 'nothing to route', not a crash."""
        net = Network(name="pair")
        net.add_duplex_link(1, 2, 10.0)
        tm = TrafficMatrix({(1, 2): 1.0})
        cut = Scenario(
            scenario_id="cut", kind="link-failure", failed_links=((1, 2), (2, 1))
        )
        result = BatchRunner(cache_dir=False, max_workers=0).run(net, tm, [cut], ["OSPF"])[0]
        assert result.error is None
        assert result.feasible and not result.connected
        assert result.mlu == 0.0
        assert result.dropped_volume == pytest.approx(1.0)

    def test_inapplicable_scenario_is_reported_not_raised(self, abilene_small_tm):
        """A scenario built for another topology yields an error result."""
        foreign = Scenario(
            scenario_id="foreign", kind="link-failure", failed_links=((1, 99),)
        )
        runner = BatchRunner(cache_dir=False, max_workers=0)
        results = runner.run(
            abilene_network(), abilene_small_tm, [foreign, baseline_scenario()], ["OSPF"]
        )
        assert not results[0].feasible
        assert "unknown link" in results[0].error
        assert results[1].feasible  # the rest of the sweep is unaffected

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_property_same_seed_same_sweep_cached_or_fresh(self, abilene_small_tm, seed):
        """Same seed => identical scenario set => identical cached-vs-fresh results."""
        net = abilene_network()
        scenarios = capacity_degradations(net, count=3, seed=seed)
        assert scenarios == capacity_degradations(net, count=3, seed=seed)
        with tempfile.TemporaryDirectory() as cache_dir:
            runner = BatchRunner(cache_dir=cache_dir, max_workers=0)
            fresh = runner.run(net, abilene_small_tm, scenarios, ["OSPF"])
            cached = runner.run(net, abilene_small_tm, scenarios, ["OSPF"])
            assert [r.as_row() for r in cached] == [r.as_row() for r in fresh]
            assert runner.last_stats.hit_rate == 1.0


# ----------------------------------------------------------------------
# Robustness metrics
# ----------------------------------------------------------------------
class TestRobustness:
    def _results(self, abilene_small_tm, protocols=("OSPF",)):
        net = abilene_network()
        scenarios = [baseline_scenario()] + single_link_failures(net)[:4]
        runner = BatchRunner(cache_dir=False, max_workers=0)
        return runner.run(net, abilene_small_tm, scenarios, list(protocols))

    def test_distribution_summary(self):
        summary = distribution_summary([0.2, 0.4, 0.6, 0.8, float("inf")])
        assert summary["count"] == 5
        assert summary["num_infinite"] == 1
        assert summary["min"] == pytest.approx(0.2)
        assert summary["max"] == pytest.approx(0.8)
        assert summary["mean"] == pytest.approx(0.5)

    def test_cvar_tail_and_degenerate_cases(self):
        values = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
        assert cvar(values, alpha=0.2) == pytest.approx(0.95)
        assert cvar(values, alpha=0.0) == pytest.approx(1.0)  # worst case
        assert cvar(values, alpha=1.0) == pytest.approx(float(np.mean(values)))
        assert cvar(values, alpha=0.2, worst_high=False) == pytest.approx(0.15)
        assert cvar([0.5, float("inf")], alpha=0.5) == float("inf")
        with pytest.raises(ValueError):
            cvar(values, alpha=1.5)

    def test_worst_case_picks_highest_mlu(self, abilene_small_tm):
        results = self._results(abilene_small_tm)
        worst = worst_case(results)
        assert worst.mlu == max(r.mlu for r in results)

    def test_regret_vs_reoptimized_oracle_at_least_one(self, abilene_small_tm):
        results = self._results(abilene_small_tm, protocols=("OSPF",))
        oracle = self._results(abilene_small_tm, protocols=("MinMaxMLU",))
        rows = regret_rows(results, oracle)
        assert len(rows) == len(results)
        # MinMaxMLU minimises MLU, so OSPF's ratio-regret is always >= 1.
        assert all(row["regret"] >= 1.0 - 1e-9 for row in rows)

    def test_infinite_regret_is_surfaced_not_averaged(self):
        from repro.scenarios.runner import ScenarioResult

        def res(sid, proto, mlu):
            return ScenarioResult(
                scenario_id=sid,
                kind="link-failure",
                protocol=proto,
                mlu=mlu,
                utility=0.0,
                routed_volume=1.0,
                dropped_volume=0.0,
                feasible=mlu != float("inf"),
                connected=True,
            )

        results = [res("a", "P", 0.5), res("b", "P", float("inf")), res("c", "P", 0.4)]
        oracle = [res("a", "O", 0.25), res("b", "O", 0.5), res("c", "O", float("inf"))]
        rows = regret_rows(results, oracle)
        # A broken oracle ("c") makes regret undefined, never a flattering 0.
        assert math.isnan(float(rows[2]["regret"]))
        row = robustness_summary(results, oracle=oracle)[0]
        assert row["infinite_regret"] == 1
        assert row["mean_regret"] == pytest.approx(2.0)  # finite cases only
        assert row["max_regret"] == float("inf")  # infinity must propagate, NaN must not mask it

    def test_robustness_summary_one_row_per_protocol(self, abilene_small_tm):
        results = self._results(abilene_small_tm, protocols=("OSPF", "MinMaxMLU"))
        rows = robustness_summary(results, cvar_alpha=0.2)
        assert [row["protocol"] for row in rows] == ["OSPF", "MinMaxMLU"]
        for row in rows:
            assert row["scenarios"] == 5
            assert row["worst_mlu"] >= row["mean_mlu"] >= row["median_mlu"] * 0.5
            assert row["cvar20_mlu"] >= row["mean_mlu"]

    def test_sweep_experiment_wires_everything(self, abilene_small_tm):
        from repro.analysis.experiments import scenario_robustness_sweep
        from repro.analysis.reporting import format_regret, format_robustness_summary

        net = abilene_network()
        sweep = scenario_robustness_sweep(
            net,
            abilene_small_tm,
            scenarios=single_link_failures(net)[:3],
            protocols=("OSPF",),
            runner=BatchRunner(cache_dir=False, max_workers=0),
        )
        assert {r["protocol"] for r in sweep["summary"]} == {"OSPF"}
        assert len(sweep["results"]) == 4  # baseline + 3 failures
        assert "mean_regret" in sweep["summary"][0]
        text = format_robustness_summary(sweep["summary"])
        assert "OSPF" in text and "cvar" in text
        assert "regret" in format_regret(sweep["regret"], worst=2)
