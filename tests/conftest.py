"""Shared fixtures for the test suite.

The fixtures favour the paper's small examples (Fig. 1, Fig. 4) and a couple
of tiny hand-built networks so that the unit tests stay fast; the larger
topologies are only exercised by the integration tests and the benchmarks.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.core.objectives import LoadBalanceObjective
from repro.network.demands import TrafficMatrix
from repro.network.graph import Network
from repro.topology.backbones import abilene_network
from repro.topology.paper_examples import (
    fig1_demands,
    fig1_network,
    fig4_demands,
    fig4_network,
)
from repro.traffic.fortz_thorup_tm import abilene_traffic_matrix

# ----------------------------------------------------------------------
# Hypothesis profiles: seeded/derandomised in CI so failures reproduce.
#
# "dev" (default) keeps the usual random exploration; "ci" derandomises the
# search (the seed is fixed per test) and prints the reproduction blob, so a
# red CI run can be replayed locally with an identical example.  Select with
# HYPOTHESIS_PROFILE=ci (the CI workflow does).
# ----------------------------------------------------------------------
settings.register_profile(
    "dev",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    max_examples=100,
    deadline=None,
    derandomize=True,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def triangle_network() -> Network:
    """A 3-node bidirectional triangle with capacity 10 per link."""
    net = Network(name="triangle")
    for u, v in [(1, 2), (2, 3), (1, 3)]:
        net.add_duplex_link(u, v, 10.0)
    return net


@pytest.fixture
def diamond_network() -> Network:
    """Two disjoint equal-hop paths from 1 to 4 (classic ECMP topology)."""
    net = Network(name="diamond")
    net.add_link(1, 2, 10.0)
    net.add_link(2, 4, 10.0)
    net.add_link(1, 3, 10.0)
    net.add_link(3, 4, 10.0)
    return net


@pytest.fixture
def diamond_demands() -> TrafficMatrix:
    return TrafficMatrix({(1, 4): 8.0})


@pytest.fixture
def line_network() -> Network:
    """A directed 4-node line 1 -> 2 -> 3 -> 4."""
    net = Network(name="line")
    net.add_link(1, 2, 5.0)
    net.add_link(2, 3, 5.0)
    net.add_link(3, 4, 5.0)
    return net


@pytest.fixture
def fig1() -> Network:
    return fig1_network()


@pytest.fixture
def fig1_tm() -> TrafficMatrix:
    return fig1_demands()


@pytest.fixture
def fig4() -> Network:
    return fig4_network()


@pytest.fixture
def fig4_tm() -> TrafficMatrix:
    return fig4_demands()


@pytest.fixture(scope="session")
def abilene() -> Network:
    return abilene_network()


@pytest.fixture(scope="session")
def abilene_tm(abilene: Network) -> TrafficMatrix:
    """A moderate-load Abilene traffic matrix (optimally routable)."""
    base = abilene_traffic_matrix(abilene, total_volume=1.0, seed=1)
    # Scale so the total demand is ~12% of total capacity: comfortably
    # feasible yet non-trivial.
    return base.scaled(0.12 * abilene.total_capacity())


@pytest.fixture
def proportional_objective() -> LoadBalanceObjective:
    return LoadBalanceObjective.proportional()
