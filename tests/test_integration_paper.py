"""Integration tests that check the paper's headline claims end-to-end.

These are slower than the unit tests (each runs a full SPEF pipeline on a
real topology) but still bounded to a few seconds each.  The absolute numbers
of the paper are not reproducible (different traffic seeds), so the tests
assert the *shape* of the results: who wins, and in which regime.
"""

import numpy as np
import pytest

from repro.core.objectives import LoadBalanceObjective, normalized_utility
from repro.core.spef import SPEF
from repro.core.te_problem import TEProblem, solve_optimal_te
from repro.protocols.minmax_mlu import MinMaxMLU
from repro.protocols.ospf import OSPF
from repro.protocols.peft import PEFT
from repro.protocols.spef_protocol import SPEFProtocol


class TestTable1Fig1:
    """Table I: the Fig. 1 example under the different objectives."""

    def test_beta1_column(self, fig1, fig1_tm):
        solution = solve_optimal_te(TEProblem(fig1, fig1_tm, LoadBalanceObjective.proportional()))
        weights = fig1.weight_dict(solution.link_weights)
        utilization = fig1.weight_dict(solution.flows.utilization())
        assert weights[(1, 3)] == pytest.approx(3.0, rel=0.02)
        assert weights[(3, 4)] == pytest.approx(10.0, rel=0.02)
        assert weights[(1, 2)] == pytest.approx(1.5, rel=0.02)
        assert weights[(2, 3)] == pytest.approx(1.5, rel=0.02)
        assert utilization[(1, 3)] == pytest.approx(2 / 3, abs=2e-3)
        assert utilization[(3, 4)] == pytest.approx(0.9, abs=1e-6)
        assert utilization[(1, 2)] == pytest.approx(1 / 3, abs=2e-3)

    def test_beta0_column(self, fig1, fig1_tm):
        solution = solve_optimal_te(TEProblem(fig1, fig1_tm, LoadBalanceObjective.minimum_hop()))
        utilization = fig1.weight_dict(solution.flows.utilization())
        # Table I beta=0: direct link fully used, detour unused.
        assert utilization[(1, 3)] == pytest.approx(1.0, abs=1e-6)
        assert utilization[(3, 4)] == pytest.approx(0.9, abs=1e-6)
        assert utilization[(1, 2)] == pytest.approx(0.0, abs=1e-6)

    def test_minmax_column(self, fig1, fig1_tm):
        flows = MinMaxMLU().route(fig1, fig1_tm)
        utilization = fig1.weight_dict(flows.utilization())
        # (3,4) carries its full 0.9 demand; the (1,3) demand is split with
        # a on the detour where a keeps MLU at 0.9.
        assert utilization[(3, 4)] == pytest.approx(0.9, abs=1e-5)
        assert flows.max_link_utilization() == pytest.approx(0.9, abs=1e-5)
        assert utilization[(1, 2)] == pytest.approx(utilization[(2, 3)], abs=1e-6)

    def test_beta_interpolates_between_extremes(self, fig1, fig1_tm):
        """Fig. 3(b): utilization of the direct link decreases with beta."""
        series = []
        for beta in (0.0, 1.0, 2.0, 4.0):
            solution = solve_optimal_te(TEProblem(fig1, fig1_tm, LoadBalanceObjective(beta=beta)))
            series.append(fig1.weight_dict(solution.flows.utilization())[(1, 3)])
        assert all(a >= b - 1e-6 for a, b in zip(series, series[1:], strict=False))
        # beta -> infinity approaches the min-max optimum of 2/3... capped by
        # the 0.9 bottleneck on the other demand; just check it drops below
        # the beta=0 level of 1.0.
        assert series[-1] < 1.0


class TestFig6Fig7Example:
    """The Fig. 4 example: OSPF overloads, SPEF spreads load."""

    def test_ospf_overloads_spef_does_not(self, fig4, fig4_tm):
        ospf_mlu = OSPF().route(fig4, fig4_tm).max_link_utilization()
        spef_mlu = SPEFProtocol().route(fig4, fig4_tm).max_link_utilization()
        assert ospf_mlu > 1.0
        assert spef_mlu < 1.0

    def test_spef_achieves_optimal_te_for_each_beta(self, fig4, fig4_tm):
        for beta in (1.0, 5.0):
            objective = LoadBalanceObjective(beta=beta)
            optimal = solve_optimal_te(TEProblem(fig4, fig4_tm, objective))
            solution = SPEF(objective=objective).fit(fig4, fig4_tm)
            assert solution.utility() == pytest.approx(optimal.utility, rel=2e-2)

    def test_second_weights_bounded(self, fig4, fig4_tm):
        """Fig. 7(b): the second weights stay small (order of a few units).

        The paper's observation that most second weights are exactly zero
        depends on its exact topology reconstruction; the robust part of the
        claim is that one extra small weight per link is enough, i.e. the
        values stay bounded and non-negative.
        """
        solution = SPEF().fit(fig4, fig4_tm)
        assert np.all(solution.second_weights >= 0)
        assert np.all(np.isfinite(solution.second_weights))
        assert float(np.max(solution.second_weights)) < 10.0

    def test_spef_uses_more_links_than_peft(self, fig4, fig4_tm):
        """Fig. 11(a): SPEF spreads traffic over at least as many links as PEFT."""
        spef_links = len(SPEFProtocol().route(fig4, fig4_tm).used_links())
        peft_links = len(PEFT().route(fig4, fig4_tm).used_links())
        assert spef_links >= peft_links


class TestAbileneFig9Fig10:
    """Abilene: SPEF vs OSPF utility and sorted utilizations."""

    @pytest.fixture(scope="class")
    def high_load_tm(self, abilene, abilene_tm):
        # Scale to a load where OSPF is stressed but the optimum still fits.
        from repro.solvers.mcf import solve_min_mlu

        base_mlu = solve_min_mlu(abilene, abilene_tm, allow_overload=True).objective
        factor = 0.85 / base_mlu
        return abilene_tm.scaled(factor)

    def test_spef_utility_at_least_ospf(self, abilene, high_load_tm):
        spef_flows = SPEFProtocol().route(abilene, high_load_tm)
        ospf_flows = OSPF().route(abilene, high_load_tm)
        spef_utility = normalized_utility(spef_flows.utilization())
        ospf_utility = normalized_utility(ospf_flows.utilization())
        assert spef_utility >= ospf_utility - 1e-6

    def test_spef_mlu_not_worse(self, abilene, high_load_tm):
        spef_mlu = SPEFProtocol().route(abilene, high_load_tm).max_link_utilization()
        ospf_mlu = OSPF().route(abilene, high_load_tm).max_link_utilization()
        assert spef_mlu <= ospf_mlu + 1e-6
        assert spef_mlu < 1.0

    def test_gap_widens_with_load(self, abilene, abilene_tm):
        """Fig. 10: the SPEF-OSPF utility gap grows with the network load."""
        from repro.solvers.mcf import solve_min_mlu

        base_mlu = solve_min_mlu(abilene, abilene_tm, allow_overload=True).objective
        gaps = []
        for target in (0.5, 0.85):
            demands = abilene_tm.scaled(target / base_mlu)
            spef = normalized_utility(SPEFProtocol().route(abilene, demands).utilization())
            ospf = normalized_utility(OSPF().route(abilene, demands).utilization())
            if ospf == float("-inf"):
                gaps.append(float("inf"))
            else:
                gaps.append(spef - ospf)
        assert gaps[1] >= gaps[0] - 1e-6
        assert all(gap >= -1e-6 for gap in gaps)

    def test_spef_keeps_underutilized_links_busier(self, abilene, high_load_tm):
        """Fig. 9: SPEF uses idle links and relieves hot ones."""
        spef_sorted = SPEFProtocol().route(abilene, high_load_tm).sorted_utilizations()
        ospf_sorted = OSPF().route(abilene, high_load_tm).sorted_utilizations()
        # Hottest link cooler under SPEF...
        assert spef_sorted[0] <= ospf_sorted[0] + 1e-9
