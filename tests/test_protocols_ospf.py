"""Unit tests for the OSPF baseline (InvCap weights + even ECMP)."""

import numpy as np
import pytest

from repro.network.demands import TrafficMatrix
from repro.network.graph import Network
from repro.protocols.ospf import OSPF, MinHopOSPF, invcap_weights, unit_weights


class TestWeightSettings:
    def test_invcap_largest_link_gets_weight_one(self):
        net = Network()
        net.add_link(1, 2, 10.0)
        net.add_link(2, 3, 2.5)
        weights = invcap_weights(net)
        assert weights[net.link_index(1, 2)] == pytest.approx(1.0)
        assert weights[net.link_index(2, 3)] == pytest.approx(4.0)

    def test_invcap_custom_reference(self):
        net = Network()
        net.add_link(1, 2, 5.0)
        weights = invcap_weights(net, reference_capacity=100.0)
        assert weights[0] == pytest.approx(20.0)

    def test_invcap_rejects_nonpositive_reference(self, triangle_network):
        with pytest.raises(ValueError):
            invcap_weights(triangle_network, reference_capacity=0.0)

    def test_unit_weights(self, triangle_network):
        assert np.allclose(unit_weights(triangle_network), 1.0)


class TestRouting:
    def test_even_ecmp_split(self, diamond_network, diamond_demands):
        flows = OSPF().route(diamond_network, diamond_demands)
        assert flows.flow_on(1, 2) == pytest.approx(4.0)
        assert flows.flow_on(1, 3) == pytest.approx(4.0)

    def test_explicit_weights_respected(self, diamond_network, diamond_demands):
        ospf = OSPF(weights={(1, 2): 1.0, (2, 4): 1.0, (1, 3): 3.0, (3, 4): 3.0})
        flows = ospf.route(diamond_network, diamond_demands)
        assert flows.flow_on(1, 2) == pytest.approx(8.0)

    def test_invcap_prefers_fat_links(self):
        net = Network()
        net.add_link(1, 2, 10.0)
        net.add_link(2, 4, 10.0)
        net.add_link(1, 3, 1.0)
        net.add_link(3, 4, 1.0)
        flows = OSPF().route(net, TrafficMatrix({(1, 4): 2.0}))
        assert flows.flow_on(1, 2) == pytest.approx(2.0)
        assert flows.flow_on(1, 3) == pytest.approx(0.0)

    def test_fig1_ospf_saturates_direct_link(self, fig1, fig1_tm):
        # All Fig. 1 capacities are equal, so InvCap == unit weights and the
        # (1,3) demand goes entirely over the direct one-hop link.
        flows = OSPF().route(fig1, fig1_tm)
        assert flows.utilization_dict()[(1, 3)] == pytest.approx(1.0)

    def test_ospf_can_overload(self, fig4, fig4_tm):
        flows = OSPF().route(fig4, fig4_tm)
        assert flows.max_link_utilization() > 1.0

    def test_min_hop_variant(self, fig4, fig4_tm):
        flows = MinHopOSPF().route(fig4, fig4_tm)
        assert flows.conservation_violation(fig4_tm) < 1e-9
        assert MinHopOSPF().name == "OSPF-minhop"

    def test_custom_name(self):
        assert OSPF(name="OSPF-custom").name == "OSPF-custom"

    def test_link_weights_exposed(self, fig4):
        weights = OSPF().link_weights(fig4)
        assert weights.shape == (fig4.num_links,)
        assert np.allclose(weights, 1.0)  # all capacities equal -> all ones


class TestSplitRatios:
    def test_even_ratios(self, diamond_network, diamond_demands):
        ratios = OSPF().split_ratios(diamond_network, diamond_demands)
        assert ratios[4][1] == {2: 0.5, 3: 0.5}

    def test_ratios_only_for_demand_destinations(self, diamond_network, diamond_demands):
        ratios = OSPF().split_ratios(diamond_network, diamond_demands)
        assert set(ratios) == {4}

    def test_evaluate_row(self, diamond_network, diamond_demands):
        evaluation = OSPF().evaluate(diamond_network, diamond_demands)
        row = evaluation.as_row()
        assert row["protocol"] == "OSPF"
        assert row["mlu"] == pytest.approx(0.4)
