"""Unit tests for the node-arc incidence machinery."""

import numpy as np
import pytest

from repro.network.demands import TrafficMatrix
from repro.network.incidence import (
    conservation_residual,
    demand_vector,
    incidence_matrix,
    reduced_system,
)


class TestIncidenceMatrix:
    def test_shape_and_signs(self, diamond_network):
        matrix = incidence_matrix(diamond_network)
        assert matrix.shape == (4, 4)
        column = matrix[:, diamond_network.link_index(1, 2)]
        assert column[diamond_network.node_index(1)] == 1.0
        assert column[diamond_network.node_index(2)] == -1.0
        assert np.count_nonzero(column) == 2

    def test_columns_sum_to_zero(self, triangle_network):
        matrix = incidence_matrix(triangle_network)
        assert np.allclose(matrix.sum(axis=0), 0.0)


class TestDemandVector:
    def test_values(self, diamond_network):
        demands = TrafficMatrix({(1, 4): 8.0, (2, 4): 2.0})
        vector = demand_vector(diamond_network, demands, 4)
        assert vector[diamond_network.node_index(1)] == 8.0
        assert vector[diamond_network.node_index(2)] == 2.0
        assert vector[diamond_network.node_index(4)] == -10.0
        assert vector.sum() == pytest.approx(0.0)

    def test_reduced_system_drops_destination_row(self, diamond_network):
        demands = TrafficMatrix({(1, 4): 8.0})
        system = reduced_system(diamond_network, demands, 4)
        assert system["A_eq"].shape == (3, 4)
        assert system["b_eq"].shape == (3,)

    def test_reduced_system_accepts_precomputed_incidence(self, diamond_network):
        demands = TrafficMatrix({(1, 4): 8.0})
        incidence = incidence_matrix(diamond_network)
        system = reduced_system(diamond_network, demands, 4, incidence=incidence)
        assert system["A_eq"].shape == (3, 4)


class TestConservationResidual:
    def test_zero_for_valid_flow(self, diamond_network):
        demands = TrafficMatrix({(1, 4): 8.0})
        flow = np.zeros(4)
        flow[diamond_network.link_index(1, 2)] = 4.0
        flow[diamond_network.link_index(2, 4)] = 4.0
        flow[diamond_network.link_index(1, 3)] = 4.0
        flow[diamond_network.link_index(3, 4)] = 4.0
        residual = conservation_residual(diamond_network, {4: flow}, demands)
        assert residual == pytest.approx(0.0)

    def test_positive_for_broken_flow(self, diamond_network):
        demands = TrafficMatrix({(1, 4): 8.0})
        flow = np.zeros(4)
        flow[diamond_network.link_index(1, 2)] = 8.0  # never reaches 4
        residual = conservation_residual(diamond_network, {4: flow}, demands)
        assert residual == pytest.approx(8.0)
