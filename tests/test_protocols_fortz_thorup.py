"""Unit tests for the Fortz-Thorup cost function and local-search optimizer."""

import numpy as np
import pytest

from repro.network.demands import TrafficMatrix
from repro.network.flows import FlowAssignment
from repro.protocols.fortz_thorup import (
    FT_BREAKPOINTS,
    FT_SLOPES,
    FortzThorup,
    link_cost,
    link_cost_derivative,
    network_cost,
    normalized_cost,
)
from repro.protocols.ospf import OSPF
from repro.solvers.assignment import ecmp_assignment


class TestLinkCost:
    def test_zero_load_zero_cost(self):
        assert link_cost(0.0, 1.0) == 0.0

    def test_first_segment_slope_one(self):
        assert link_cost(0.2, 1.0) == pytest.approx(0.2)

    def test_segment_boundaries_continuous(self):
        for boundary in FT_BREAKPOINTS[1:]:
            below = link_cost(boundary - 1e-9, 1.0)
            above = link_cost(boundary + 1e-9, 1.0)
            assert above == pytest.approx(below, abs=1e-4)

    def test_known_value_at_two_thirds(self):
        # 1/3 at slope 1 plus 1/3 at slope 3.
        assert link_cost(2.0 / 3.0, 1.0) == pytest.approx(1.0 / 3.0 + 1.0)

    def test_scales_with_capacity(self):
        assert link_cost(20.0, 30.0) == pytest.approx(30.0 * link_cost(2.0 / 3.0, 1.0))

    def test_overload_is_very_expensive(self):
        assert link_cost(1.2, 1.0) > 500 * 0.1

    def test_convexity(self):
        loads = np.linspace(0, 1.3, 40)
        costs = [link_cost(x, 1.0) for x in loads]
        diffs = np.diff(costs)
        assert np.all(np.diff(diffs) >= -1e-9)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            link_cost(1.0, 0.0)
        with pytest.raises(ValueError):
            link_cost_derivative(1.0, -1.0)

    def test_derivative_matches_segments(self):
        assert link_cost_derivative(0.1, 1.0) == FT_SLOPES[0]
        assert link_cost_derivative(0.5, 1.0) == FT_SLOPES[1]
        assert link_cost_derivative(0.95, 1.0) == FT_SLOPES[3]
        assert link_cost_derivative(1.05, 1.0) == FT_SLOPES[4]
        assert link_cost_derivative(2.0, 1.0) == FT_SLOPES[5]


class TestNetworkCost:
    def test_sums_over_links(self, diamond_network):
        flows = FlowAssignment(network=diamond_network)
        flows.add_path_flow(4, [1, 2, 4], 2.0)
        expected = 2 * link_cost(2.0, 10.0)
        assert network_cost(flows) == pytest.approx(expected)

    def test_normalized_cost_near_one_when_uncongested(self, fig1):
        demands = TrafficMatrix({(1, 3): 0.1, (3, 4): 0.09})
        flows = ecmp_assignment(fig1, demands, np.ones(4))
        assert normalized_cost(flows, demands) == pytest.approx(1.0, abs=0.1)

    def test_normalized_cost_zero_for_no_traffic(self, fig1):
        flows = FlowAssignment(network=fig1)
        assert normalized_cost(flows, TrafficMatrix()) == 0.0


class TestLocalSearch:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FortzThorup(max_weight=0)

    def test_optimizer_improves_over_invcap(self, fig4, fig4_tm):
        ft = FortzThorup(max_weight=10, max_evaluations=150, seed=1)
        result = ft.optimize(fig4, fig4_tm)
        baseline = network_cost(OSPF().route(fig4, fig4_tm))
        assert result.cost <= baseline + 1e-9

    def test_weights_are_integers_in_range(self, fig1, fig1_tm):
        ft = FortzThorup(max_weight=5, max_evaluations=80, seed=2)
        result = ft.optimize(fig1, fig1_tm)
        assert np.all(result.weights >= 1)
        assert np.all(result.weights <= 5)
        assert np.allclose(result.weights, np.rint(result.weights))

    def test_route_uses_optimized_weights(self, fig1, fig1_tm):
        ft = FortzThorup(max_weight=5, max_evaluations=80, seed=2)
        flows = ft.route(fig1, fig1_tm)
        assert ft.last_result is not None
        rerouted = ecmp_assignment(fig1, fig1_tm, ft.last_result.weights)
        assert np.allclose(flows.aggregate(), rerouted.aggregate())

    def test_deterministic_given_seed(self, fig1, fig1_tm):
        a = FortzThorup(max_weight=5, max_evaluations=60, seed=7).optimize(fig1, fig1_tm)
        b = FortzThorup(max_weight=5, max_evaluations=60, seed=7).optimize(fig1, fig1_tm)
        assert np.allclose(a.weights, b.weights)
        assert a.cost == pytest.approx(b.cost)

    def test_respects_evaluation_budget(self, fig1, fig1_tm):
        ft = FortzThorup(max_weight=5, max_evaluations=25, seed=0)
        result = ft.optimize(fig1, fig1_tm)
        assert result.evaluations <= 25 + 2  # initial evaluations per restart

    def test_fig1_avoids_saturating_direct_link(self, fig1, fig1_tm):
        # Table I: the FT-optimised weights move part of the (1,3) demand to
        # the two-hop path, keeping the direct link below 100%.
        ft = FortzThorup(max_weight=10, max_evaluations=300, seed=3)
        flows = ft.route(fig1, fig1_tm)
        assert flows.max_link_utilization() <= 1.0 + 1e-9
