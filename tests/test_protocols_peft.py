"""Unit tests for the PEFT baseline (downward exponential flow splitting)."""

import numpy as np
import pytest

from repro.protocols.peft import PEFT


class TestConstruction:
    def test_invalid_temperature_rejected(self):
        with pytest.raises(ValueError):
            PEFT(temperature=0.0)

    def test_default_objective_is_proportional(self):
        assert PEFT().objective.beta == 1.0


class TestRouting:
    def test_diamond_splits_exponentially(self, diamond_network, diamond_demands):
        # Path 1-2-4 has length 2, path 1-3-4 has length 3; node 3 is still
        # strictly closer to 4 than node 1, so both paths are "downward" and
        # the longer one gets an exp(-extra length) = exp(-1) share.
        weights = {(1, 2): 1.0, (2, 4): 1.0, (1, 3): 1.5, (3, 4): 1.5}
        flows = PEFT(weights=weights).route(diamond_network, diamond_demands)
        share_long = np.exp(-1.0) / (1.0 + np.exp(-1.0))
        assert flows.flow_on(1, 3) == pytest.approx(8.0 * share_long, rel=1e-6)
        assert flows.conservation_violation(diamond_demands) < 1e-9

    def test_equal_paths_split_evenly(self, diamond_network, diamond_demands):
        flows = PEFT(weights=np.ones(4)).route(diamond_network, diamond_demands)
        assert flows.flow_on(1, 2) == pytest.approx(4.0)
        assert flows.flow_on(1, 3) == pytest.approx(4.0)

    def test_temperature_spreads_traffic(self, diamond_network, diamond_demands):
        weights = {(1, 2): 1.0, (2, 4): 1.0, (1, 3): 1.5, (3, 4): 1.5}
        cold = PEFT(weights=weights, temperature=1.0).route(diamond_network, diamond_demands)
        hot = PEFT(weights=weights, temperature=10.0).route(diamond_network, diamond_demands)
        assert hot.flow_on(1, 3) > cold.flow_on(1, 3)

    def test_conservation_on_fig4(self, fig4, fig4_tm):
        flows = PEFT(weights=np.ones(fig4.num_links)).route(fig4, fig4_tm)
        assert flows.conservation_violation(fig4_tm) < 1e-9

    def test_derives_weights_from_te_when_omitted(self, fig4, fig4_tm):
        peft = PEFT()
        weights = peft.link_weights(fig4, fig4_tm)
        assert weights.shape == (fig4.num_links,)
        assert np.all(weights >= 0)
        flows = peft.route(fig4, fig4_tm)
        assert flows.conservation_violation(fig4_tm) < 1e-9

    def test_only_downward_links_carry_flow(self, fig4, fig4_tm):
        from repro.network.spt import distances_to

        weights = np.ones(fig4.num_links)
        flows = PEFT(weights=weights).route(fig4, fig4_tm)
        for destination, vector in flows.per_destination.items():
            distances = distances_to(fig4, destination, weights)
            for link in fig4.links:
                if vector[link.index] > 1e-9:
                    assert distances[link.target] < distances[link.source]


class TestSplitRatios:
    def test_ratios_sum_to_one(self, fig4, fig4_tm):
        ratios = PEFT(weights=np.ones(fig4.num_links)).split_ratios(fig4, fig4_tm)
        for per_node in ratios.values():
            for hops in per_node.values():
                assert sum(hops.values()) == pytest.approx(1.0)

    def test_ratio_keys_are_demand_destinations(self, fig4, fig4_tm):
        ratios = PEFT(weights=np.ones(fig4.num_links)).split_ratios(fig4, fig4_tm)
        assert set(ratios) == set(fig4_tm.destinations())


class TestComparisonWithSPEF:
    def test_peft_uses_no_more_links_than_spef_on_example(self, fig4, fig4_tm):
        """The Fig. 11 observation: SPEF spreads load over at least as many links."""
        from repro.protocols.spef_protocol import SPEFProtocol

        peft_flows = PEFT().route(fig4, fig4_tm)
        spef_flows = SPEFProtocol().route(fig4, fig4_tm)
        assert len(spef_flows.used_links()) >= len(peft_flows.used_links())
