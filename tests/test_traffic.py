"""Unit tests for traffic matrix generators and demand scaling."""

import numpy as np
import pytest

from repro.network.demands import TrafficMatrix
from repro.topology.backbones import abilene_network, cernet2_network
from repro.topology.paper_examples import fig1_network
from repro.traffic.fortz_thorup_tm import (
    ABILENE_COORDINATES,
    abilene_traffic_matrix,
    euclidean_distances,
    fortz_thorup_traffic_matrix,
    hop_distances,
)
from repro.traffic.gravity import (
    bimodal_traffic_matrix,
    gravity_from_link_loads,
    gravity_traffic_matrix,
    node_capacity_weights,
    uniform_traffic_matrix,
)
from repro.traffic.netflow import cernet2_traffic_matrix, synthesize_netflow
from repro.traffic.scaling import (
    load_sweep,
    scale_to_network_load,
    scale_to_optimal_mlu,
    sweep_until_saturation,
)


class TestGravity:
    def test_total_volume_matches(self, triangle_network):
        tm = gravity_traffic_matrix(triangle_network, total_volume=12.0)
        assert tm.total_volume() == pytest.approx(12.0)

    def test_no_self_demands(self, triangle_network):
        tm = gravity_traffic_matrix(triangle_network, total_volume=5.0)
        assert all(s != t for s, t in tm.pairs())

    def test_zero_volume_gives_empty_matrix(self, triangle_network):
        assert len(gravity_traffic_matrix(triangle_network, 0.0)) == 0

    def test_negative_volume_rejected(self, triangle_network):
        with pytest.raises(ValueError):
            gravity_traffic_matrix(triangle_network, -1.0)

    def test_weights_shape_demand(self, triangle_network):
        out_w = {1: 10.0, 2: 1.0, 3: 1.0}
        tm = gravity_traffic_matrix(triangle_network, 12.0, out_weights=out_w)
        assert tm.outgoing_volume(1) > tm.outgoing_volume(2)

    def test_node_capacity_weights(self, triangle_network):
        weights = node_capacity_weights(triangle_network)
        assert weights[1] == pytest.approx(20.0)

    def test_gravity_from_link_loads(self):
        net = cernet2_network()
        loads = {link.endpoints: 0.1 * link.capacity for link in net.links}
        tm = gravity_from_link_loads(net, loads)
        assert tm.total_volume() == pytest.approx(sum(loads.values()) / 2)
        tm.validate(net)

    def test_gravity_from_link_loads_validation(self, triangle_network):
        with pytest.raises(ValueError):
            gravity_from_link_loads(triangle_network, {(1, 99): 1.0})
        with pytest.raises(ValueError):
            gravity_from_link_loads(triangle_network, {(1, 2): -1.0})

    def test_uniform_matrix(self, triangle_network):
        tm = uniform_traffic_matrix(triangle_network, 2.0)
        assert len(tm) == 6
        assert tm.total_volume() == pytest.approx(12.0)
        with pytest.raises(ValueError):
            uniform_traffic_matrix(triangle_network, -1.0)

    def test_bimodal_matrix(self, triangle_network):
        tm = bimodal_traffic_matrix(triangle_network, 10.0, heavy_fraction=0.3, seed=1)
        assert tm.total_volume() == pytest.approx(10.0)
        volumes = sorted((v for _, v in tm.items()), reverse=True)
        assert volumes[0] > volumes[-1]

    def test_bimodal_validation(self, triangle_network):
        with pytest.raises(ValueError):
            bimodal_traffic_matrix(triangle_network, 1.0, heavy_fraction=1.5)
        with pytest.raises(ValueError):
            bimodal_traffic_matrix(triangle_network, 1.0, heavy_share=1.5)


class TestFortzThorupTm:
    def test_total_volume(self):
        net = abilene_network()
        tm = fortz_thorup_traffic_matrix(net, total_volume=7.0, seed=0)
        assert tm.total_volume() == pytest.approx(7.0)
        tm.validate(net)

    def test_deterministic_per_seed(self):
        net = abilene_network()
        a = fortz_thorup_traffic_matrix(net, 1.0, seed=3)
        b = fortz_thorup_traffic_matrix(net, 1.0, seed=3)
        c = fortz_thorup_traffic_matrix(net, 1.0, seed=4)
        assert a == b
        assert a != c

    def test_abilene_matrix_uses_coordinates(self):
        net = abilene_network()
        tm = abilene_traffic_matrix(net, total_volume=1.0, seed=1)
        assert tm.total_volume() == pytest.approx(1.0)
        assert set(ABILENE_COORDINATES) == set(net.nodes)

    def test_hop_distances_symmetric_topology(self):
        net = fig1_network()
        dist = hop_distances(net)
        assert dist[(1, 3)] == 1.0
        assert dist[(1, 4)] == 2.0
        assert (3, 1) not in dist  # unreachable in the directed Fig. 1 graph

    def test_euclidean_distances(self):
        coords = {1: (0.0, 0.0), 2: (3.0, 4.0)}
        dist = euclidean_distances(coords)
        assert dist[(1, 2)] == pytest.approx(5.0)

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            fortz_thorup_traffic_matrix(abilene_network(), -1.0)


class TestNetflow:
    def test_sample_dimensions(self):
        net = cernet2_network()
        sample = synthesize_netflow(net, mean_utilization=0.2, hours=48, seed=1)
        assert len(sample.series) == net.num_links
        assert all(len(v) == 48 for v in sample.series.values())

    def test_mean_utilization_respected(self):
        net = cernet2_network()
        sample = synthesize_netflow(net, mean_utilization=0.2, seed=1)
        achieved = sum(sample.average_loads().values()) / net.total_capacity()
        assert achieved == pytest.approx(0.2, abs=0.03)

    def test_loads_within_capacity(self):
        net = cernet2_network()
        sample = synthesize_netflow(net, mean_utilization=0.3, seed=2)
        for (u, v), series in sample.series.items():
            assert np.all(series <= net.capacity_of(u, v) + 1e-9)

    def test_busiest_links_and_peaks(self):
        net = cernet2_network()
        sample = synthesize_netflow(net, seed=3)
        top = sample.busiest_links(3)
        assert len(top) == 3
        peaks = sample.peak_loads()
        averages = sample.average_loads()
        assert all(peaks[edge] >= averages[edge] for edge in top)

    def test_invalid_utilization_rejected(self):
        with pytest.raises(ValueError):
            synthesize_netflow(cernet2_network(), mean_utilization=1.5)

    def test_cernet2_matrix_routable(self):
        net = cernet2_network()
        tm = cernet2_traffic_matrix(net, mean_utilization=0.2, seed=2010)
        tm.validate(net)
        assert tm.total_volume() > 0

    def test_cernet2_matrix_deterministic(self):
        net = cernet2_network()
        assert cernet2_traffic_matrix(net, seed=1) == cernet2_traffic_matrix(net, seed=1)


class TestScaling:
    def test_scale_to_network_load(self, fig1, fig1_tm):
        scaled = scale_to_network_load(fig1, fig1_tm, 0.1)
        assert scaled.network_load(fig1) == pytest.approx(0.1)

    def test_scale_to_network_load_validation(self, fig1, fig1_tm):
        with pytest.raises(ValueError):
            scale_to_network_load(fig1, fig1_tm, -0.1)
        with pytest.raises(ValueError):
            scale_to_network_load(fig1, TrafficMatrix(), 0.1)

    def test_scale_to_optimal_mlu(self, fig1, fig1_tm):
        scaled = scale_to_optimal_mlu(fig1, fig1_tm, target_mlu=0.5)
        from repro.solvers.mcf import solve_min_mlu

        assert solve_min_mlu(fig1, scaled, allow_overload=True).objective == pytest.approx(
            0.5, abs=1e-3
        )

    def test_scale_to_optimal_mlu_validation(self, fig1, fig1_tm):
        with pytest.raises(ValueError):
            scale_to_optimal_mlu(fig1, fig1_tm, target_mlu=0.0)

    def test_load_sweep(self, fig1, fig1_tm):
        points = load_sweep(fig1, fig1_tm, [0.1, 0.2, 0.3])
        assert [p.network_load for p in points] == [0.1, 0.2, 0.3]
        for point in points:
            assert point.demands.network_load(fig1) == pytest.approx(point.network_load)

    def test_sweep_until_saturation_stops(self, fig1, fig1_tm):
        points = sweep_until_saturation(fig1, fig1_tm, start_load=0.3, step=0.1, max_points=20)
        assert len(points) < 20
        from repro.solvers.mcf import solve_min_mlu

        final = solve_min_mlu(fig1, points[-1].demands, allow_overload=True).objective
        assert final >= 1.0 - 1e-9

    def test_sweep_until_saturation_custom_predicate(self, fig1, fig1_tm):
        points = sweep_until_saturation(
            fig1, fig1_tm, start_load=0.1, step=0.1, stop_when=lambda tm: True
        )
        assert len(points) == 1

    def test_sweep_step_validation(self, fig1, fig1_tm):
        with pytest.raises(ValueError):
            sweep_until_saturation(fig1, fig1_tm, start_load=0.1, step=0.0)
