"""Tests for the experiment harness and reporting helpers (fast paths only)."""

import pytest

from repro.analysis.experiments import (
    fig2_cost_curves,
    fig4_example_results,
    fig5_forwarding_table,
    table1_weights_and_utilizations,
    table4_demands,
)
from repro.analysis.reporting import (
    format_histogram,
    format_series,
    format_table,
    series_summary,
)
from repro.topology.paper_examples import fig4_network


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.34567}, {"a": 10, "b": float("inf")}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert "inf" in text

    def test_format_table_empty(self):
        assert "(empty)" in format_table([])
        assert "t" in format_table([], title="t")

    def test_format_table_column_subset(self):
        text = format_table([{"a": 1, "b": 2}], columns=["a"])
        assert "b" not in text.splitlines()[0]

    def test_format_series(self):
        text = format_series({"s1": [1.0, 2.0], "s2": [3.0]}, x_values=[0.1, 0.2], x_label="load")
        assert "load" in text
        assert "s1" in text and "s2" in text

    def test_format_series_empty(self):
        assert format_series({}) == "(empty)"

    def test_format_histogram(self):
        text = format_histogram({1: 10, 2: 3}, title="paths")
        assert "paths" in text
        assert "10" in text

    def test_series_summary(self):
        summary = series_summary([1.0, 2.0, 3.0])
        assert summary == {"min": 1.0, "mean": 2.0, "max": 3.0}
        assert series_summary([]) == {"min": 0.0, "mean": 0.0, "max": 0.0}


class TestSmallExperiments:
    def test_table1_rows(self):
        rows = table1_weights_and_utilizations()
        # 4 objectives x 4 links.
        assert len(rows) == 16
        beta1 = {r["link"]: r for r in rows if r["objective"] == "beta=1"}
        assert beta1["1->3"]["weight"] == pytest.approx(3.0, rel=0.02)
        assert beta1["3->4"]["utilization"] == pytest.approx(0.9, abs=1e-3)

    def test_fig2_curves_shape(self):
        curves = fig2_cost_curves(loads=[0.0, 0.5, 0.9])
        assert set(curves) == {"load", "FT", "beta=0", "beta=1", "beta=2"}
        for name in ("FT", "beta=1", "beta=2"):
            values = curves[name]
            assert values == sorted(values)  # increasing in load
        assert curves["beta=0"][1] == pytest.approx(0.5)

    def test_fig4_example_results_keys(self):
        results = fig4_example_results(betas=(1.0,))
        assert len(results["link_labels"]) == 13
        assert len(results["OSPF_utilization"]) == 13
        assert len(results["SPEF1_utilization"]) == 13
        assert len(results["SPEF1_first_weights"]) == 13
        assert len(results["SPEF1_second_weights"]) == 13
        assert max(results["OSPF_utilization"]) > max(results["SPEF1_utilization"])

    def test_fig5_forwarding_table_rows(self):
        result = fig5_forwarding_table(beta=1.0, destination=2)
        rows = result["rows"]
        assert rows, "expected at least one forwarding entry towards node 2"
        for row in rows:
            assert row["destination"] == 2
            assert 0 <= row["split_ratio"] <= 1

    def test_table4_demands(self):
        demands = table4_demands()
        assert demands["simple"].total_volume() == pytest.approx(16.0)
        assert demands["cernet2"].total_volume() == pytest.approx(3.5)
        demands["simple"].validate(fig4_network())
