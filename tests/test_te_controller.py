"""The online TE controller: events, equivalence, warm starts, integration.

Three layers are pinned here:

* the event model (conversions from scenarios, validation, timed traces);
* :class:`TEController` behaviour — incremental failure sweeps equivalent
  to cold per-scenario evaluation (1e-9 link loads), drop accounting,
  demand/capacity events, the delta-recompiled ensemble path, the
  discrete-event simulator binding;
* the warm-started reoptimization hooks (Fortz–Thorup ``warm_start=``,
  ``SPEF.fit(warm_start=)``) and the scenario runner's incremental fast
  path with its collision-proof cache keys.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.spef import SPEF
from repro.network.demands import TrafficMatrix
from repro.network.graph import Network
from repro.online import (
    CapacityChange,
    DemandUpdate,
    EventError,
    LinkFailure,
    LinkRecovery,
    LinkWeightChange,
    TEController,
    failure_events,
    failure_recovery_trace,
    is_incremental_sweepable,
    is_pure_failure,
    recovery_events,
    scenario_events,
    scenario_failed_edges,
    scenario_revert_events,
)
from repro.protocols.fortz_thorup import FortzThorup
from repro.protocols.ospf import OSPF, MinHopOSPF, invcap_weights
from repro.protocols.peft import PEFT
from repro.routing import SparseRouter
from repro.scenarios import Scenario, single_link_failures, node_failures
from repro.scenarios import capacity_degradations, combine
from repro.scenarios.runner import (
    BatchRunner,
    ProtocolSpec,
    ResultCache,
    _incremental_eligible,
    evaluate_scenario,
    evaluate_scenarios,
    incremental_sweep_capacity_independent,
    incremental_sweep_weights,
)
from repro.simulator.events import Simulator

TOLERANCE = 1e-9


# ----------------------------------------------------------------------
# event model
# ----------------------------------------------------------------------
class TestEvents:
    def test_is_pure_failure(self):
        assert is_pure_failure(Scenario("s", failed_links=((1, 2),)))
        assert is_pure_failure(Scenario("s", failed_nodes=(3,)))
        assert not is_pure_failure(Scenario("s"))  # baseline perturbs nothing
        assert not is_pure_failure(
            Scenario("s", failed_links=((1, 2),), demand_scale=0.5)
        )
        assert not is_pure_failure(
            Scenario("s", failed_links=((1, 2),), capacity_factors=(((1, 2), 0.5),))
        )

    def test_node_failure_expands_to_incident_links(self, diamond_network):
        scenario = node_failures(diamond_network, nodes=[2])[0]
        edges = scenario_failed_edges(diamond_network, scenario)
        assert set(edges) == {(1, 2), (2, 4)}
        events = failure_events(diamond_network, scenario)
        assert [event.link for event in events] == edges
        back = recovery_events(diamond_network, scenario)
        assert [event.link for event in back] == edges

    def test_unknown_link_raises(self, diamond_network):
        scenario = Scenario("bad", failed_links=((1, 4),))
        with pytest.raises(EventError):
            scenario_failed_edges(diamond_network, scenario)
        with pytest.raises(EventError):
            failure_events(diamond_network, Scenario("demand", demand_scale=2.0))

    def test_failure_recovery_trace_times(self, diamond_network):
        scenarios = single_link_failures(diamond_network, duplex=False)[:2]
        trace = failure_recovery_trace(
            diamond_network, scenarios, period=10.0, outage=4.0, start=1.0
        )
        assert [event.time for event in trace] == [1.0, 5.0, 11.0, 15.0]
        assert isinstance(trace[0], LinkFailure) and isinstance(trace[1], LinkRecovery)
        with pytest.raises(EventError):
            failure_recovery_trace(diamond_network, scenarios, period=0.0)

    def test_event_kinds(self):
        assert LinkFailure(link=(1, 2)).kind == "link-failure"
        assert DemandUpdate(source=1, target=2, volume=3.0).kind == "demand-update"


# ----------------------------------------------------------------------
# full scenario -> event conversion (capacity algebra included)
# ----------------------------------------------------------------------
class TestScenarioEvents:
    def test_is_incremental_sweepable(self):
        assert is_incremental_sweepable(Scenario("s", failed_links=((1, 2),)))
        assert is_incremental_sweepable(
            Scenario("s", capacity_factors=(((1, 2), 0.5),))
        )
        assert is_incremental_sweepable(
            Scenario("s", failed_links=((1, 2),), capacity_factors=(((2, 1), 0.5),))
        )
        assert not is_incremental_sweepable(Scenario("s"))  # baseline
        assert not is_incremental_sweepable(Scenario("s", demand_scale=2.0))
        assert not is_incremental_sweepable(
            Scenario("s", capacity_factors=(((1, 2), 0.5),), demand_scale=0.5)
        )

    def test_mixed_scenario_expands_to_failures_then_capacities(self, diamond_network):
        scenario = Scenario(
            "mix",
            failed_links=((1, 2),),
            capacity_factors=(((1, 3), 0.25),),
        )
        events = scenario_events(diamond_network, scenario)
        assert [type(e) for e in events] == [LinkFailure, CapacityChange]
        assert events[0].link == (1, 2)
        assert events[1].link == (1, 3)
        assert events[1].capacity == pytest.approx(2.5)  # 10 * 0.25

    def test_factor_zero_becomes_link_failure(self, diamond_network):
        scenario = Scenario("zero", capacity_factors=(((1, 3), 0.0),))
        events = scenario_events(diamond_network, scenario)
        assert events == [LinkFailure(link=(1, 3))]

    def test_duplicate_edges_merge_multiplicatively(self, diamond_network):
        scenario = Scenario(
            "dupe", capacity_factors=(((1, 3), 0.5), ((1, 3), 0.5))
        )
        events = scenario_events(diamond_network, scenario)
        assert events == [CapacityChange(link=(1, 3), capacity=2.5)]  # 10 * 0.25
        # ... and to a failure when the product hits zero.
        dead = Scenario("dead", capacity_factors=(((1, 3), 0.5), ((1, 3), 0.0)))
        assert scenario_events(diamond_network, dead) == [LinkFailure(link=(1, 3))]

    def test_failed_link_wins_over_capacity_factor(self, diamond_network):
        scenario = Scenario(
            "both", failed_links=((1, 3),), capacity_factors=(((1, 3), 0.5),)
        )
        assert scenario_events(diamond_network, scenario) == [LinkFailure(link=(1, 3))]

    def test_unknown_link_and_demand_scenarios_raise(self, diamond_network):
        with pytest.raises(EventError):
            scenario_events(
                diamond_network, Scenario("ghost", capacity_factors=(((9, 9), 0.5),))
            )
        with pytest.raises(EventError):
            scenario_events(diamond_network, Scenario("demand", demand_scale=2.0))
        with pytest.raises(EventError):
            scenario_events(diamond_network, Scenario("baseline"))

    def test_revert_events_round_trip(self, diamond_network):
        scenario = Scenario(
            "mix", failed_links=((1, 2),), capacity_factors=(((1, 3), 0.25),)
        )
        events = scenario_events(diamond_network, scenario)
        reverted = scenario_revert_events(diamond_network, events)
        assert reverted[0] == LinkRecovery(link=(1, 2))
        assert reverted[1] == CapacityChange(link=(1, 3), capacity=10.0)


# ----------------------------------------------------------------------
# controller behaviour
# ----------------------------------------------------------------------
class TestController:
    def test_failure_recovery_roundtrip_restores_loads(self, abilene, abilene_tm):
        controller = TEController(abilene, abilene_tm)
        baseline = controller.measure()
        edge = abilene.links[0].endpoints
        update = controller.apply(LinkFailure(link=edge))
        assert update.affected_destinations > 0
        degraded = controller.measure()
        assert not np.allclose(degraded.loads, baseline.loads, atol=TOLERANCE)
        assert degraded.loads[0] == 0.0  # the failed link carries nothing
        controller.apply(LinkRecovery(link=edge))
        restored = controller.measure()
        np.testing.assert_allclose(restored.loads, baseline.loads, atol=TOLERANCE, rtol=0)
        assert len(controller.log) == 2

    def test_loads_match_ospf_route(self, abilene, abilene_tm):
        weights = invcap_weights(abilene)
        controller = TEController(abilene, abilene_tm, weights=weights)
        cold = OSPF(weights=abilene.weight_dict(weights)).route(abilene, abilene_tm)
        np.testing.assert_allclose(
            controller.link_loads(), cold.aggregate(), atol=TOLERANCE, rtol=0
        )

    def test_sweep_matches_cold_scenario_evaluation(self, abilene, abilene_tm):
        controller = TEController(abilene, abilene_tm)
        scenarios = single_link_failures(abilene)
        measurements = controller.sweep_pure_failures(scenarios)
        spec = ProtocolSpec.of("OSPF")
        for scenario, measurement in zip(scenarios, measurements, strict=True):
            cold = evaluate_scenario(abilene, abilene_tm, scenario, spec)
            assert measurement.mlu == pytest.approx(cold.mlu, abs=TOLERANCE)
            assert measurement.utility == pytest.approx(cold.utility, abs=1e-6)
            assert measurement.routed_volume == pytest.approx(cold.routed_volume, abs=TOLERANCE)
            assert measurement.dropped_volume == pytest.approx(cold.dropped_volume, abs=TOLERANCE)
            assert measurement.connected == cold.connected

    def test_sweep_scenarios_matches_cold_on_capacity_and_mixed(self, abilene, abilene_tm):
        """The tentpole equivalence: capacity/mixed sweeps == cold to 1e-12."""
        protocol = MinHopOSPF()
        scenarios = (
            capacity_degradations(abilene, count=4, factor=0.5, seed=7)
            + [
                combine(
                    single_link_failures(abilene)[0],
                    capacity_degradations(abilene, count=1, factor=0.3, seed=9)[0],
                ),
                Scenario(
                    "zero", kind="capacity",
                    capacity_factors=((abilene.links[2].endpoints, 0.0),),
                ),
            ]
        )
        controller = TEController(
            abilene, abilene_tm,
            weights=protocol.ecmp_forwarding_weights(abilene),
            tolerance=protocol.ecmp_tolerance,
        )
        baseline = controller.measure()
        measurements = controller.sweep_scenarios(scenarios)
        spec = ProtocolSpec.of("MinHopOSPF")
        for scenario, measurement in zip(scenarios, measurements, strict=True):
            cold = evaluate_scenario(abilene, abilene_tm, scenario, spec)
            assert measurement.mlu == pytest.approx(cold.mlu, abs=1e-12), scenario.scenario_id
            assert measurement.utility == pytest.approx(cold.utility, abs=1e-9)
            assert measurement.routed_volume == pytest.approx(cold.routed_volume, abs=1e-12)
            assert measurement.dropped_volume == pytest.approx(cold.dropped_volume, abs=1e-12)
            assert measurement.connected == cold.connected
        # The controller is back in its starting state, capacities included.
        after = controller.measure()
        np.testing.assert_allclose(after.loads, baseline.loads, atol=0, rtol=0)
        np.testing.assert_array_equal(controller.capacities, abilene.capacities)

    def test_factor_zero_equivalence_cold_vs_incremental(self, abilene, abilene_tm):
        """The foreground bugfix pin: factor-0 loads agree on both paths."""
        protocol = MinHopOSPF()
        edge = abilene.links[0].endpoints
        scenarios = [
            Scenario("zero-a", capacity_factors=((edge, 0.0),)),
            Scenario("zero-b", capacity_factors=((abilene.links[4].endpoints, 0.0),)),
        ]
        controller = TEController(
            abilene, abilene_tm, weights=protocol.ecmp_forwarding_weights(abilene)
        )
        measurements = controller.sweep_scenarios(scenarios)
        weight_map = abilene.weight_dict(protocol.ecmp_forwarding_weights(abilene))
        for scenario, measurement in zip(scenarios, measurements, strict=True):
            instance = scenario.apply(abilene, abilene_tm)
            assert not instance.network.has_link(*scenario.capacity_factors[0][0])
            pruned_weights = {
                link.endpoints: weight_map[link.endpoints]
                for link in instance.network.links
            }
            cold = SparseRouter(
                instance.network, weights=pruned_weights, mode="ecmp"
            ).route(instance.demands).aggregate()
            mapped = np.zeros(abilene.num_links)
            for link in instance.network.links:
                mapped[abilene.link_index(link.source, link.target)] = cold[link.index]
            np.testing.assert_allclose(measurement.loads, mapped, atol=1e-12, rtol=0)

    def test_sweep_pure_failures_rejects_capacity_scenarios(self, abilene, abilene_tm):
        controller = TEController(abilene, abilene_tm)
        with pytest.raises(EventError):
            controller.sweep_pure_failures(
                [Scenario("cap", capacity_factors=((abilene.links[0].endpoints, 0.5),))]
            )

    def test_drop_accounting_on_disconnection(self):
        net = Network(name="line")
        net.add_link(1, 2, 5.0)
        net.add_link(2, 3, 5.0)
        tm = TrafficMatrix({(1, 3): 2.0, (1, 2): 1.0})
        controller = TEController(net, tm, weights=[1.0, 1.0])
        controller.apply(LinkFailure(link=(2, 3)))
        measurement = controller.measure()
        assert measurement.dropped_volume == pytest.approx(2.0)
        assert measurement.dropped_pairs == ((1, 3),)
        assert measurement.routed_volume == pytest.approx(1.0)
        assert not measurement.connected

    def test_demand_update_events(self, abilene, abilene_tm):
        controller = TEController(abilene, abilene_tm)
        pair = abilene_tm.pairs()[0]
        controller.apply(DemandUpdate(source=pair[0], target=pair[1], volume=0.0))
        expected = TrafficMatrix(
            {p: v for p, v in abilene_tm.items() if p != pair}
        )
        cold = OSPF(weights=abilene.weight_dict(controller.weights)).route(
            abilene, expected
        )
        np.testing.assert_allclose(
            controller.link_loads(), cold.aggregate(), atol=TOLERANCE, rtol=0
        )
        assert controller.demands.total_volume() == pytest.approx(expected.total_volume())

    def test_capacity_change_moves_mlu_not_loads(self, abilene, abilene_tm):
        controller = TEController(abilene, abilene_tm)
        before = controller.measure()
        link = abilene.links[int(np.argmax(before.loads))]
        controller.apply(
            CapacityChange(link=link.endpoints, capacity=link.capacity / 2.0)
        )
        after = controller.measure()
        np.testing.assert_allclose(after.loads, before.loads, atol=TOLERANCE, rtol=0)
        assert after.mlu > before.mlu

    def test_capacity_zero_is_a_link_failure(self, abilene, abilene_tm):
        """Capacity <= 0 events are explicit failures, matching Scenario.apply."""
        edge = abilene.links[0].endpoints
        reference = TEController(abilene, abilene_tm)
        reference.apply(LinkFailure(link=edge))
        expected = reference.measure()

        controller = TEController(abilene, abilene_tm)
        update = controller.apply(CapacityChange(link=edge, capacity=0.0))
        assert update.affected_destinations > 0
        assert edge in controller.spt.failed_links()
        measurement = controller.measure()
        np.testing.assert_allclose(measurement.loads, expected.loads, atol=TOLERANCE, rtol=0)
        assert measurement.mlu == pytest.approx(expected.mlu, abs=TOLERANCE)
        # The configured capacity is retained (utilization stays 0, not 0/0)
        # and the link recovers like any other failure.
        assert controller.capacities[0] == abilene.links[0].capacity
        controller.apply(LinkRecovery(link=edge))
        baseline = TEController(abilene, abilene_tm).measure()
        assert controller.measure().mlu == pytest.approx(baseline.mlu, abs=TOLERANCE)

    def test_weight_change_event(self, diamond_network, diamond_demands):
        controller = TEController(
            diamond_network, diamond_demands, weights=[1.0, 1.0, 1.0, 1.0]
        )
        assert controller.measure().mlu == pytest.approx(0.4)  # 4 on each branch
        controller.apply(LinkWeightChange(link=(1, 3), weight=5.0))
        assert controller.measure().mlu == pytest.approx(0.8)  # all 8 via node 2

    def test_active_network_reflects_failures_and_capacities(self, abilene, abilene_tm):
        controller = TEController(abilene, abilene_tm)
        edge = abilene.links[3].endpoints
        controller.apply(LinkFailure(link=edge))
        controller.apply(CapacityChange(link=abilene.links[4].endpoints, capacity=7.5))
        active = controller.active_network()
        assert not active.has_link(*edge)
        assert active.num_links == abilene.num_links - 1
        assert active.capacity_of(*abilene.links[4].endpoints) == pytest.approx(7.5)

    def test_ensemble_link_loads_delta_refreshes(self, abilene, abilene_tm):
        controller = TEController(abilene, abilene_tm)
        matrices = [abilene_tm.scaled(0.5), abilene_tm.scaled(1.25)]
        edge = abilene.links[0].endpoints
        controller.ensemble_link_loads(matrices)  # builds the compiled router
        controller.apply(LinkFailure(link=edge))
        loads = controller.ensemble_link_loads(matrices)
        assert loads.shape == (2, abilene.num_links)
        # Cold reference: ECMP on the pruned network with the same weights.
        scenario = Scenario("link", failed_links=(edge,))
        instance = scenario.apply(abilene, abilene_tm)
        weight_map = abilene.weight_dict(controller.weights)
        pruned_weights = {
            link.endpoints: weight_map[link.endpoints] for link in instance.network.links
        }
        for row, matrix in zip(loads, matrices, strict=True):
            router = SparseRouter(instance.network, weights=pruned_weights)
            cold = router.link_loads(matrix)
            mapped = np.zeros(abilene.num_links)
            for link in instance.network.links:
                mapped[abilene.link_index(link.source, link.target)] = cold[link.index]
            np.testing.assert_allclose(row, mapped, atol=TOLERANCE, rtol=0)

    def test_ensemble_builds_state_for_unseen_destinations(self):
        net = Network(name="square")
        for u, v in [(1, 2), (2, 3), (3, 4), (4, 1)]:
            net.add_duplex_link(u, v, 10.0)
        controller = TEController(
            net, TrafficMatrix({(1, 2): 1.0}), weights=[1.0] * net.num_links
        )
        loads = controller.ensemble_link_loads([TrafficMatrix({(1, 3): 2.0})])
        cold = OSPF(weights=net.weight_dict(controller.weights)).route(
            net, TrafficMatrix({(1, 3): 2.0})
        )
        np.testing.assert_allclose(loads[0], cold.aggregate(), atol=TOLERANCE, rtol=0)

    def test_bind_replays_trace_through_simulator(self, abilene, abilene_tm):
        controller = TEController(abilene, abilene_tm)
        baseline = controller.measure()
        scenarios = single_link_failures(abilene)[:3]
        trace = failure_recovery_trace(abilene, scenarios, period=10.0, outage=5.0)
        simulator = Simulator()
        timeline = []
        scheduled = controller.bind(
            simulator,
            trace,
            on_update=lambda c, update: timeline.append((update.event.time, c.mlu())),
        )
        assert scheduled == len(trace)
        simulator.run()
        assert simulator.processed_events == len(trace)
        assert len(timeline) == len(trace)
        # After every outage healed, the controller is back at baseline.
        assert timeline[-1][1] == pytest.approx(baseline.mlu, abs=TOLERANCE)
        assert max(t for t, _ in timeline) == trace[-1].time

    def test_unknown_event_type_raises(self, abilene, abilene_tm):
        controller = TEController(abilene, abilene_tm)

        class Mystery:  # not a NetworkEvent subclass
            pass

        with pytest.raises(EventError):
            controller.apply(Mystery())  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# warm-started reoptimization
# ----------------------------------------------------------------------
class TestWarmStarts:
    def test_fortz_thorup_warm_start_plumbing(self, abilene, abilene_tm):
        search = FortzThorup(restarts=1, seed=0, max_evaluations=1, max_weight=20)
        start = np.full(abilene.num_links, 7.3)
        result = search.optimize(abilene, abilene_tm, warm_start=start)
        np.testing.assert_array_equal(result.weights, np.full(abilene.num_links, 7.0))
        with pytest.raises(ValueError):
            search.optimize(abilene, abilene_tm, warm_start=np.ones(3))

    def test_fortz_thorup_warm_start_converges_faster(self, abilene, abilene_tm):
        def make():
            return FortzThorup(restarts=1, seed=0, max_evaluations=300)

        cold = make().optimize(abilene, abilene_tm)
        drifted = abilene_tm.scaled(1.02)
        recold = make().optimize(abilene, drifted)
        warm = make().optimize(abilene, drifted, warm_start=cold.weights)
        assert warm.evaluations < recold.evaluations
        assert warm.cost <= recold.cost * 1.05  # no quality cliff

    def test_controller_reoptimize_installs_weights(self, abilene, abilene_tm):
        controller = TEController(abilene, abilene_tm)
        before_mlu = controller.mlu()
        result = controller.reoptimize(
            optimizer=FortzThorup(restarts=1, seed=0, max_evaluations=60)
        )
        assert result.evaluations <= 60
        installed = controller.weights
        assert np.all(installed >= 1.0) and np.all(installed <= 20.0)
        # The controller still routes (and can sweep) after installation.
        after = controller.measure()
        assert np.isfinite(after.mlu)
        assert controller.log[-1].affected_destinations > 0
        assert before_mlu > 0

    def test_spef_warm_start_reduces_iterations(self, abilene, abilene_tm):
        spef = SPEF(te_tolerance=1e-4, alg2_tolerance=1e-2)
        cold = spef.fit(abilene, abilene_tm)
        drifted = abilene_tm.scaled(1.05)
        recold = spef.fit(abilene, drifted)
        warm = spef.fit(abilene, drifted, warm_start=cold)
        assert warm.te_solution.iterations <= recold.te_solution.iterations
        assert warm.second_result.iterations < recold.second_result.iterations
        assert warm.max_link_utilization() == pytest.approx(
            recold.max_link_utilization(), abs=5e-2
        )

    def test_spef_incompatible_warm_start_ignored(self, abilene, abilene_tm, fig4, fig4_tm):
        spef = SPEF(te_tolerance=1e-4, alg2_tolerance=1e-2)
        other = spef.fit(fig4, fig4_tm)
        # A warm start from a different topology must be ignored, not wrong.
        solution = spef.fit(abilene, abilene_tm, warm_start=other)
        cold = spef.fit(abilene, abilene_tm)
        assert solution.max_link_utilization() == pytest.approx(
            cold.max_link_utilization(), abs=1e-6
        )

    def test_spef_warm_start_rejects_same_size_different_wiring(self):
        """Same link count, different wiring: the edge-list guard must fire."""

        def ring(name, order):
            net = Network(name=name)
            for u, v in zip(order, order[1:] + order[:1], strict=True):
                net.add_duplex_link(u, v, 10.0)
            return net

        net_a = ring("ring-a", [1, 2, 3, 4])
        net_b = ring("ring-b", [1, 3, 2, 4])  # same 8 links, different wiring
        tm = TrafficMatrix({(1, 2): 1.0, (3, 4): 1.0})
        spef = SPEF(te_tolerance=1e-4, alg2_tolerance=1e-2)
        warm_from_a = spef.fit(net_a, tm)
        assert spef._warm_initial_flows(net_b, tm, warm_from_a) is None
        warm = spef.fit(net_b, tm, warm_start=warm_from_a)
        cold = spef.fit(net_b, tm)
        assert warm.max_link_utilization() == pytest.approx(
            cold.max_link_utilization(), abs=1e-6
        )


# ----------------------------------------------------------------------
# scenario runner integration
# ----------------------------------------------------------------------
class TestRunnerIncrementalPath:
    def test_hook_support_matrix(self, abilene, abilene_tm):
        assert incremental_sweep_weights(OSPF(), abilene) is not None
        assert incremental_sweep_weights(MinHopOSPF(), abilene) is not None
        mapping = abilene.weight_dict(invcap_weights(abilene))
        assert incremental_sweep_weights(OSPF(weights=mapping), abilene) is not None
        # Raw link-indexed vectors decline: the cold per-cell path cannot
        # apply them to a pruned failure instance, and the two paths must
        # stay result-equivalent.
        assert incremental_sweep_weights(
            OSPF(weights=invcap_weights(abilene)), abilene
        ) is None
        # Forced oracle backend declines, as do re-optimising protocols.
        assert incremental_sweep_weights(OSPF(backend="python"), abilene) is None
        assert incremental_sweep_weights(PEFT(), abilene) is None
        assert incremental_sweep_weights(FortzThorup(), abilene) is None
        assert incremental_sweep_weights(None, abilene) is None

    def test_capacity_independence_matrix(self, abilene):
        mapping = abilene.weight_dict(invcap_weights(abilene))
        # Explicit mapping weights and unit weights survive capacity scaling;
        # the InvCap default re-derives and must decline capacity sweeps.
        assert incremental_sweep_capacity_independent(OSPF(weights=mapping), abilene)
        assert incremental_sweep_capacity_independent(MinHopOSPF(), abilene)
        assert not incremental_sweep_capacity_independent(OSPF(), abilene)
        assert not incremental_sweep_capacity_independent(OSPF(backend="python"), abilene)
        assert not incremental_sweep_capacity_independent(PEFT(), abilene)
        assert not incremental_sweep_capacity_independent(None, abilene)

    def test_incremental_eligibility_by_scenario_and_protocol(self):
        failure = Scenario("f", failed_links=((1, 2),))
        capacity = Scenario("c", capacity_factors=(((1, 2), 0.5),))
        mixed = Scenario("m", failed_links=((1, 2),), capacity_factors=(((2, 1), 0.5),))
        demandy = Scenario("d", capacity_factors=(((1, 2), 0.5),), demand_scale=2.0)
        assert _incremental_eligible(failure, capacity_independent=False)
        assert _incremental_eligible(failure, capacity_independent=True)
        assert not _incremental_eligible(capacity, capacity_independent=False)
        assert _incremental_eligible(capacity, capacity_independent=True)
        assert not _incremental_eligible(mixed, capacity_independent=False)
        assert _incremental_eligible(mixed, capacity_independent=True)
        assert not _incremental_eligible(demandy, capacity_independent=True)

    def test_evaluate_scenarios_matches_per_cell(self, abilene, abilene_tm):
        scenarios = single_link_failures(abilene) + node_failures(abilene, nodes=[3])
        spec = ProtocolSpec.of("OSPF")
        grouped = evaluate_scenarios(abilene, abilene_tm, scenarios, spec)
        for scenario, result in zip(scenarios, grouped, strict=True):
            cold = evaluate_scenario(abilene, abilene_tm, scenario, spec)
            assert result.as_row() == cold.as_row()
            assert result.error is None

    def test_capacity_sweep_matches_per_cell_and_isolates_errors(self, abilene, abilene_tm):
        """Capacity/mixed cells ride the sweep (MinHop); unknown links fall back."""
        scenarios = (
            capacity_degradations(abilene, count=3, factor=0.5, seed=2)
            + single_link_failures(abilene)[:2]
            + [Scenario("ghost", kind="capacity", capacity_factors=(((999, 1000), 0.5),))]
        )
        spec = ProtocolSpec.of("MinHopOSPF")
        grouped = evaluate_scenarios(abilene, abilene_tm, scenarios, spec)
        for scenario, result in zip(scenarios[:-1], grouped[:-1], strict=True):
            cold = evaluate_scenario(abilene, abilene_tm, scenario, spec)
            assert result.as_row() == cold.as_row(), scenario.scenario_id
            assert result.error is None
            # Incremental cells report construction separately from runtime.
            assert result.setup_runtime >= 0.0
        assert grouped[-1].error is not None and not grouped[-1].feasible
        # The sweep really took the incremental path for the eligible cells:
        # construction was amortised into setup_runtime, not runtime.
        assert any(result.setup_runtime > 0.0 for result in grouped[:-1])

    def test_capacity_scenarios_stay_cold_for_invcap(self, abilene, abilene_tm):
        """InvCap-derived weights keep capacity cells per-cell — and correct."""
        scenarios = capacity_degradations(abilene, count=3, factor=0.5, seed=2)
        spec = ProtocolSpec.of("OSPF")
        grouped = evaluate_scenarios(abilene, abilene_tm, scenarios, spec)
        for scenario, result in zip(scenarios, grouped, strict=True):
            cold = evaluate_scenario(abilene, abilene_tm, scenario, spec)
            assert result.as_row() == cold.as_row()
            assert result.setup_runtime == 0.0

    def test_single_eligible_scenario_matches_cold(self, abilene, abilene_tm):
        """A lone eligible scenario is evaluated cold — with identical results."""
        scenario = single_link_failures(abilene)[0]
        spec = ProtocolSpec.of("OSPF")
        result = evaluate_scenarios(abilene, abilene_tm, [scenario], spec)[0]
        cold = evaluate_scenario(abilene, abilene_tm, scenario, spec)
        assert result.as_row() == cold.as_row()

    def test_bad_scenario_keeps_per_cell_error_isolation(self, abilene, abilene_tm):
        scenarios = single_link_failures(abilene)[:3] + [
            Scenario("ghost", kind="link-failure", failed_links=((999, 1000),))
        ]
        results = evaluate_scenarios(
            abilene, abilene_tm, scenarios, ProtocolSpec.of("OSPF")
        )
        assert [r.error is None for r in results] == [True, True, True, False]
        assert not results[-1].feasible

    def test_cache_keys_distinguish_incremental_from_cold(self):
        args = ("net-fp", "demands-fp", "scenario-fp", "protocol-fp")
        cold_key = ResultCache.key_from_fingerprints(*args)
        incremental_key = ResultCache.key_from_fingerprints(
            *args, {"route": "incremental"}
        )
        assert cold_key != incremental_key
        assert ResultCache.key_from_fingerprints(*args, None) == cold_key
        assert (
            ResultCache.key_from_fingerprints(*args, {"route": "incremental"})
            == incremental_key
        )

    def test_batch_runner_caches_incremental_sweeps(self, tmp_path, abilene, abilene_tm):
        runner = BatchRunner(cache_dir=tmp_path, max_workers=0)
        scenarios = single_link_failures(abilene)
        first = runner.run(abilene, abilene_tm, scenarios, ["OSPF"])
        assert runner.last_stats.cache_hits == 0
        second = runner.run(abilene, abilene_tm, scenarios, ["OSPF"])
        assert runner.last_stats.cache_hits == len(scenarios)
        assert [r.as_row() for r in first] == [r.as_row() for r in second]

    def test_batch_runner_caches_capacity_sweeps_route_flagged(
        self, tmp_path, abilene, abilene_tm
    ):
        """Capacity cells hit route-flagged keys for MinHop, cold keys for InvCap."""
        runner = BatchRunner(cache_dir=tmp_path, max_workers=0)
        scenarios = capacity_degradations(abilene, count=3, factor=0.5, seed=5)
        first = runner.run(abilene, abilene_tm, scenarios, ["MinHopOSPF"])
        assert runner.last_stats.cache_hits == 0
        second = runner.run(abilene, abilene_tm, scenarios, ["MinHopOSPF"])
        assert runner.last_stats.cache_hits == len(scenarios)
        assert [r.as_row() for r in first] == [r.as_row() for r in second]
        # The same scenarios under InvCap OSPF are a *different* (cold-path)
        # key space: no collisions with the incremental entries.
        runner.run(abilene, abilene_tm, scenarios, ["OSPF"])
        assert runner.last_stats.cache_hits == 0


# ----------------------------------------------------------------------
# shared compiled baselines (snapshot / from_snapshot) and delta loads
# ----------------------------------------------------------------------
class TestSnapshotBaseline:
    def test_from_snapshot_matches_parent_without_cold_builds(self, abilene, abilene_tm):
        parent = TEController(abilene, abilene_tm)
        parent.link_loads()  # compile the baseline before freezing it
        warm = TEController.from_snapshot(abilene, parent.snapshot())
        # Adoption must not pay any per-destination cold Dijkstra.
        assert warm.spt.stats.initial_builds == 0
        np.testing.assert_allclose(
            warm.link_loads(), parent.link_loads(), atol=TOLERANCE, rtol=0
        )
        scenarios = single_link_failures(abilene)[:6]
        for mine, theirs in zip(
            warm.sweep_pure_failures(scenarios), parent.sweep_pure_failures(scenarios),
            strict=True,
        ):
            assert mine.mlu == pytest.approx(theirs.mlu, abs=TOLERANCE)
            assert mine.connected == theirs.connected
            np.testing.assert_allclose(
                mine.loads, theirs.loads, atol=TOLERANCE, rtol=0
            )

    def test_snapshot_survives_pickling(self, abilene, abilene_tm):
        import pickle

        parent = TEController(abilene, abilene_tm)
        wire = pickle.loads(pickle.dumps(parent.snapshot()))
        warm = TEController.from_snapshot(abilene, wire)
        np.testing.assert_allclose(
            warm.link_loads(), parent.link_loads(), atol=TOLERANCE, rtol=0
        )

    def test_snapshot_topology_mismatch_raises(self, abilene, abilene_tm, fig4):
        snapshot = TEController(abilene, abilene_tm).snapshot()
        with pytest.raises(EventError, match="does not match"):
            TEController.from_snapshot(fig4, snapshot)


class TestDeltaLoads:
    def test_event_by_event_loads_match_fresh_controller(self, abilene, abilene_tm):
        """The subtree delta-load path equals a cold rebuild after every event."""
        controller = TEController(abilene, abilene_tm)
        failed: list = []
        for edge in [abilene.links[3].endpoints, abilene.links[11].endpoints]:
            controller.apply(LinkFailure(link=edge))
            failed.append(edge)
            fresh = TEController(abilene, abilene_tm)
            for down in failed:
                fresh.apply(LinkFailure(link=down))
            np.testing.assert_allclose(
                controller.link_loads(), fresh.link_loads(), atol=TOLERANCE, rtol=0
            )
        # Recovery walks the same path in reverse.
        controller.apply(LinkRecovery(link=failed.pop()))
        fresh = TEController(abilene, abilene_tm)
        fresh.apply(LinkFailure(link=failed[0]))
        np.testing.assert_allclose(
            controller.link_loads(), fresh.link_loads(), atol=TOLERANCE, rtol=0
        )


class TestSetupAmortisation:
    def test_parallel_setup_runtime_sums_to_run_setup_seconds(self, abilene, abilene_tm):
        """Invariant: per-cell setup shares add up to the run's setup clock."""
        runner = BatchRunner(cache_dir=False, max_workers=2)
        results = runner.run(
            abilene, abilene_tm, single_link_failures(abilene), ["OSPF"]
        )
        stats = runner.last_stats
        assert stats.workers == 2 and stats.cache_hits == 0
        assert stats.setup_seconds == pytest.approx(
            sum(result.setup_runtime for result in results), rel=1e-9
        )
        assert all(result.error is None for result in results)

    def test_lone_candidate_rides_warm_baseline(self, abilene, abilene_tm):
        """One eligible scenario goes incremental iff a baseline is supplied."""
        spec = ProtocolSpec.of("OSPF")
        scenario = single_link_failures(abilene)[0]
        controller = TEController(
            abilene, abilene_tm, weights=incremental_sweep_weights(spec.build(), abilene)
        )
        baseline = controller.snapshot()

        cold = evaluate_scenarios(abilene, abilene_tm, [scenario], spec)[0]
        warm = evaluate_scenarios(
            abilene, abilene_tm, [scenario], spec, baseline=baseline
        )[0]
        # Cold path: a lone candidate without a snapshot is cheaper per cell
        # and carries no amortised setup. Warm path: the adopted snapshot
        # charges its (tiny) construction to setup_runtime.
        assert cold.setup_runtime == 0.0
        assert warm.setup_runtime > 0.0
        assert warm.error is None
        assert warm.mlu == pytest.approx(cold.mlu, abs=TOLERANCE)
        assert warm.utility == pytest.approx(cold.utility, abs=1e-6)
        assert warm.dropped_volume == pytest.approx(cold.dropped_volume, abs=TOLERANCE)
