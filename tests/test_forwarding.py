"""Unit tests for the SPEF forwarding tables (Table II structure)."""

import numpy as np
import pytest

from repro.core.forwarding import (
    build_forwarding_tables,
    split_ratios_from_tables,
    verify_split_consistency,
)
from repro.core.traffic_distribution import exponential_split_ratios
from repro.network.spt import all_shortest_path_dags


@pytest.fixture
def diamond_setup(diamond_network):
    weights = np.ones(4)
    dags = all_shortest_path_dags(diamond_network, [4], weights)
    second = diamond_network.weight_vector({(1, 2): 1.0, (2, 4): 0.5, (1, 3): 0.0, (3, 4): 0.0})
    tables = build_forwarding_tables(diamond_network, dags, second)
    return dags, second, tables


class TestBuildTables:
    def test_every_node_with_next_hops_has_entries(self, diamond_setup, diamond_network):
        dags, second, tables = diamond_setup
        assert 4 in tables[1].entries
        assert set(tables[1].next_hops(4)) == {2, 3}
        # The destination itself holds no entry for itself.
        assert 4 not in tables[4].entries

    def test_path_lengths_under_second_weights(self, diamond_setup):
        dags, second, tables = diamond_setup
        rows = dict(tables[1].as_rows(4))
        assert rows[2] == (pytest.approx(1.5),)
        assert rows[3] == (pytest.approx(0.0),)

    def test_split_ratios_match_eq22(self, diamond_setup, diamond_network):
        dags, second, tables = diamond_setup
        expected = exponential_split_ratios(diamond_network, dags[4], second)
        assert tables[1].split_ratio(4, 2) == pytest.approx(expected[1][2])
        assert tables[1].split_ratio(4, 3) == pytest.approx(expected[1][3])

    def test_split_ratio_for_unknown_hop_is_zero(self, diamond_setup):
        _, _, tables = diamond_setup
        assert tables[1].split_ratio(4, 99) == 0.0
        assert tables[1].split_ratio(99, 2) == 0.0

    def test_split_ratios_sum_to_one(self, fig4, fig4_tm):
        weights = np.ones(fig4.num_links)
        dags = all_shortest_path_dags(fig4, fig4_tm.destinations(), weights)
        tables = build_forwarding_tables(fig4, dags, np.zeros(fig4.num_links))
        for table in tables.values():
            for destination in table.destinations():
                total = sum(table.split_ratios(destination).values())
                assert total == pytest.approx(1.0)

    def test_num_equal_cost_paths(self, diamond_setup):
        _, _, tables = diamond_setup
        assert tables[1].num_equal_cost_paths(4) == 2
        assert tables[2].num_equal_cost_paths(4) == 1

    def test_max_paths_per_entry_truncates_listing(self, fig4, fig4_tm):
        weights = np.ones(fig4.num_links)
        dags = all_shortest_path_dags(fig4, fig4_tm.destinations(), weights)
        tables = build_forwarding_tables(fig4, dags, np.zeros(fig4.num_links), max_paths_per_entry=1)
        for table in tables.values():
            for destination in table.destinations():
                for entry in table.entries[destination]:
                    assert entry.num_paths <= 1


class TestReindexAndVerify:
    def test_split_ratios_from_tables_format(self, diamond_setup):
        _, _, tables = diamond_setup
        ratios = split_ratios_from_tables(tables)
        assert 4 in ratios
        assert ratios[4][1][2] == pytest.approx(tables[1].split_ratio(4, 2))

    def test_verify_split_consistency_true(self, diamond_setup, diamond_network):
        dags, second, tables = diamond_setup
        assert verify_split_consistency(diamond_network, dags, second, tables)

    def test_verify_split_consistency_detects_tampering(self, diamond_setup, diamond_network):
        dags, second, tables = diamond_setup
        entry = tables[1].entries[4][0]
        tables[1].entries[4][0] = type(entry)(
            next_hop=entry.next_hop,
            path_lengths=entry.path_lengths,
            split_ratio=0.99,
        )
        assert not verify_split_consistency(diamond_network, dags, second, tables)

    def test_verify_split_consistency_missing_node(self, diamond_setup, diamond_network):
        dags, second, tables = diamond_setup
        del tables[1]
        assert not verify_split_consistency(diamond_network, dags, second, tables)
