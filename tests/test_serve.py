"""The serve daemon end to end: real sockets, real frames, real sessions.

The acceptance contract: a trace fed over the socket answers with
measurements bit-for-bit identical to ``replay_failure_trace`` on the
same trace, malformed frames are rejected without dropping the
connection, graceful shutdown writes a byte-stable state dump that
round-trips, and tenants are isolated.
"""

from __future__ import annotations

import json

import pytest

from repro.online import (
    ControllerSession,
    LinkFailure,
    failure_recovery_trace,
    replay_failure_trace,
)
from repro.scenarios import single_link_failures
from repro.serve import ServeClient, ServeClientError, ServerThread, TEServer
from repro.serve.wire import (
    MAX_FRAME_BYTES,
    WireError,
    desanitize,
    dumps_state,
    parse_frame,
    sanitize,
)
from repro.topology.backbones import abilene_network, cernet2_network
from repro.traffic.fortz_thorup_tm import abilene_traffic_matrix
from repro.traffic.gravity import gravity_traffic_matrix


def abilene_workload():
    network = abilene_network()
    demands = abilene_traffic_matrix(network, total_volume=1.0, seed=1).scaled(
        0.15 * network.total_capacity()
    )
    return network, demands


def cernet2_workload():
    network = cernet2_network()
    demands = gravity_traffic_matrix(network, 0.1 * network.total_capacity())
    return network, demands


def abilene_session():
    return ControllerSession(*abilene_workload())


@pytest.fixture
def server(tmp_path):
    dump_path = tmp_path / "state.json"
    session = abilene_session()
    te_server = TEServer({session.key: session}, state_dump_path=dump_path)
    with ServerThread(te_server) as runner:
        yield te_server, runner, dump_path


def connect(runner) -> ServeClient:
    return ServeClient("127.0.0.1", runner.port)


# ----------------------------------------------------------------------
# frame parsing (no socket)
# ----------------------------------------------------------------------
class TestParseFrame:
    def test_event_frame(self):
        frame = parse_frame(
            b'{"v": 1, "type": "event", "session": "x", '
            b'"event": {"v": 1, "event": "link-failure", "time": 0.0, '
            b'"link": ["a", "b"]}}'
        )
        assert frame.type == "event"
        assert frame.session == "x"
        assert isinstance(frame.event, LinkFailure)

    @pytest.mark.parametrize(
        "line, message",
        [
            (b"not json", "invalid JSON"),
            (b'[1, 2]', "JSON object"),
            (b'{"v": 2, "type": "query", "query": "mlu"}', "protocol version"),
            (b'{"v": 1, "type": "wat"}', "unknown frame type"),
            (b'{"v": 1, "type": "query", "query": "wat"}', "unknown query"),
            (b'{"v": 1, "type": "query", "query": "forwarding"}', "destination"),
            (b'{"v": 1, "type": "control", "action": "wat"}', "control action"),
            (b'{"v": 1, "type": "event"}', "missing its 'event'"),
            (b'{"v": 1, "type": "event", "event": {"event": "wat", "time": 0}}',
             "unknown event kind"),
            (b'{"v": 1, "type": "query", "query": "mlu", "session": 7}',
             "'session' must be a string"),
        ],
    )
    def test_malformed_frames(self, line, message):
        with pytest.raises(WireError, match=message):
            parse_frame(line)


# ----------------------------------------------------------------------
# end to end: socket replay == batch replay, bit for bit
# ----------------------------------------------------------------------
class TestSocketReplayEquivalence:
    def test_socket_rows_match_batch_replay(self, server):
        _, runner, _ = server
        network, demands = abilene_workload()
        scenarios = single_link_failures(network)[:3]
        trace = failure_recovery_trace(network, scenarios, period=600.0, outage=300.0)
        batch = replay_failure_trace(
            network, demands, scenarios, period=600.0, outage=300.0
        )
        with connect(runner) as client:
            responses = client.feed_trace(trace)
            served_rows = [r["row"] for r in responses]
            served_mlu = client.mlu()
        assert served_rows == batch.session.event_rows()
        assert served_mlu == round(batch.final.mlu, 12)

    def test_forwarding_matches_batch_session(self, server):
        _, runner, _ = server
        network, demands = abilene_workload()
        scenarios = single_link_failures(network)[:1]
        trace = failure_recovery_trace(network, scenarios, period=600.0, outage=300.0)
        failures = [e for e in trace if e.kind == "link-failure"]
        batch_session = abilene_session()
        batch_session.feed_many(failures)
        destinations = sorted({str(t) for (_, t), _volume in demands.items()})
        with connect(runner) as client:
            client.feed_trace(failures)
            for destination in destinations:
                served = client.forwarding(destination)
                expected = batch_session.forwarding(
                    {str(n): n for n in network.nodes}[destination]
                )
                assert served["nodes"] == expected["nodes"]

    def test_status_and_counters_queries(self, server):
        _, runner, _ = server
        with connect(runner) as client:
            status = client.status()
            assert status["topology"] == "Abilene"
            assert status["events"] == 0
            counters = client.counters()
            assert counters["events"] == 0
            assert client.sessions() == ["Abilene"]


# ----------------------------------------------------------------------
# malformed frames over the socket
# ----------------------------------------------------------------------
class TestMalformedFrames:
    @pytest.mark.parametrize(
        "line",
        [
            b"not json at all",
            b'{"v": 99, "type": "query", "query": "mlu"}',
            b'{"v": 1, "type": "event", "event": {"v": 1, "event": "link-failure", '
            b'"time": 0.0, "link": ["a", "b"], "bogus": 1}}',
            # Schema-valid but names a link the topology does not have: the
            # domain error must come back as a response, not kill the feed.
            b'{"v": 1, "type": "event", "event": {"v": 1, "event": "link-failure", '
            b'"time": 0.0, "link": ["a", "b"]}}',
            b'{"v": 1, "type": "query", "query": "forwarding", "destination": "nope"}',
            b'{"v": 1, "type": "event", "session": "no-such-tenant", "event": '
            b'{"v": 1, "event": "noop", "time": 0.0}}',
        ],
    )
    def test_rejected_without_dropping_connection(self, server, line):
        _, runner, _ = server
        with connect(runner) as client:
            response = client.send_line(line)
            assert response["ok"] is False
            assert response["error"]
            # The same connection keeps answering.
            assert isinstance(client.mlu(), float)

    def test_error_frames_do_not_mutate_state(self, server):
        _, runner, _ = server
        with connect(runner) as client:
            before = client.counters()["events"]
            client.send_line(
                b'{"v": 1, "type": "event", "event": '
                b'{"v": 1, "event": "link-failure", "time": 0.0}}'
            )
            assert client.counters()["events"] == before


# ----------------------------------------------------------------------
# graceful shutdown and the state dump
# ----------------------------------------------------------------------
class TestGracefulShutdown:
    def test_shutdown_writes_byte_stable_dump_that_round_trips(self, server):
        te_server, runner, dump_path = server
        network, _ = abilene_workload()
        scenarios = single_link_failures(network)[:1]
        trace = failure_recovery_trace(network, scenarios, period=600.0, outage=300.0)
        failures = [e for e in trace if e.kind == "link-failure"]
        with connect(runner) as client:
            client.feed_trace(failures)
            live_dump = client.dump()["Abilene"]
            assert client.shutdown()["stopping"] is True
        runner.stop()
        assert dump_path.exists()
        on_disk = json.loads(dump_path.read_text())
        assert list(on_disk) == ["Abilene"]
        # The dump served over the socket and the dump written at shutdown
        # describe the same state, byte for byte.
        assert dumps_state(on_disk["Abilene"]) == dumps_state(live_dump)
        restored = ControllerSession.from_state_dump(
            abilene_network(), on_disk["Abilene"]
        )
        assert dumps_state(restored.state_dump()["state"]) == dumps_state(
            on_disk["Abilene"]["state"]
        )

    def test_connection_refused_after_shutdown(self, server):
        _, runner, _ = server
        with connect(runner) as client:
            client.shutdown()
        runner.stop()
        with pytest.raises(OSError):
            connect(runner)


# ----------------------------------------------------------------------
# multi-tenancy
# ----------------------------------------------------------------------
class TestTwoTenantIsolation:
    @pytest.fixture
    def two_tenants(self, tmp_path):
        abilene = abilene_session()
        cernet2 = ControllerSession(*cernet2_workload())
        te_server = TEServer(
            {abilene.key: abilene, cernet2.key: cernet2},
            state_dump_path=tmp_path / "state.json",
        )
        with ServerThread(te_server) as runner:
            yield te_server, runner

    def test_session_required_when_ambiguous(self, two_tenants):
        _, runner = two_tenants
        with connect(runner) as client:
            assert client.sessions() == ["Abilene", "Cernet2"]
            with pytest.raises(ServeClientError, match="'session' is required"):
                client.mlu()

    def test_events_only_touch_their_tenant(self, two_tenants):
        _, runner = two_tenants
        abilene = abilene_network()
        scenarios = single_link_failures(abilene)[:1]
        trace = failure_recovery_trace(abilene, scenarios, period=600.0, outage=300.0)
        failures = [e for e in trace if e.kind == "link-failure"]
        with connect(runner) as client:
            cernet2_before = client.mlu(session="Cernet2")
            abilene_before = client.mlu(session="Abilene")
            client.feed_trace(failures, session="Abilene")
            assert client.mlu(session="Abilene") != abilene_before
            assert client.mlu(session="Cernet2") == cernet2_before
            assert client.counters(session="Cernet2")["events"] == 0
            assert client.counters(session="Abilene")["events"] == len(failures)

    def test_dump_covers_both_tenants(self, two_tenants):
        _, runner = two_tenants
        with connect(runner) as client:
            dumps = client.dump()
            assert sorted(dumps) == ["Abilene", "Cernet2"]
            only = client.dump(session="Cernet2")
            assert sorted(only) == ["Cernet2"]


# ----------------------------------------------------------------------
# wire sanitize/desanitize edge cases
# ----------------------------------------------------------------------
class TestWireSanitize:
    def test_nested_non_finite_floats_round_trip(self):
        payload = {
            "rows": [
                {"mlu": float("inf"), "samples": [float("nan"), -0.0, 1.5]},
                {"mlu": float("-inf"), "nested": {"deep": [{"v": float("inf")}]}},
            ],
            "plain": 2.25,
        }
        clean = sanitize(payload)
        # Strict JSON round trip: no inf/nan survives serialisation...
        blob = json.dumps(clean, sort_keys=True, allow_nan=False)
        restored = desanitize(json.loads(blob))
        # ...yet every non-finite value comes back bit-for-bit.
        assert restored["rows"][0]["mlu"] == float("inf")
        assert restored["rows"][1]["mlu"] == float("-inf")
        assert restored["rows"][1]["nested"]["deep"][0]["v"] == float("inf")
        nan = restored["rows"][0]["samples"][0]
        assert nan != nan
        assert restored["rows"][0]["samples"][1:] == [-0.0, 1.5]
        assert restored["plain"] == 2.25

    def test_sanitize_normalises_tuples_to_lists(self):
        assert sanitize({"pair": (1.0, float("nan"))}) == {"pair": [1.0, "NaN"]}

    def test_desanitize_leaves_ordinary_strings_alone(self):
        payload = {"note": "Infinity is mentioned, not encoded", "name": "NaN-like"}
        assert desanitize(payload) == payload

    def test_frame_at_max_frame_bytes_parses_and_one_over_rejects(self):
        skeleton = json.dumps(
            {"v": 1, "type": "query", "query": "mlu", "session": ""}, sort_keys=True
        ).encode("utf-8")
        padding = MAX_FRAME_BYTES - len(skeleton)
        line = json.dumps(
            {"v": 1, "type": "query", "query": "mlu", "session": "s" * padding},
            sort_keys=True,
        ).encode("utf-8")
        assert len(line) == MAX_FRAME_BYTES
        frame = parse_frame(line)
        assert frame.type == "query" and frame.query == "mlu"
        with pytest.raises(WireError, match="exceeds"):
            parse_frame(line + b" ")

    def test_dumps_state_round_trips_byte_for_byte(self):
        dump = {
            "weights": [1.0, float("inf"), 2.5],
            "residuals": [{"worst": float("nan")}, {"worst": -0.0}],
            "capacities": {"a": 1e9, "b": float("-inf")},
        }
        first = dumps_state(dump)
        # decode -> desanitize -> re-dump must reproduce identical bytes.
        assert dumps_state(desanitize(json.loads(first))) == first
