"""``repro check``: every REP rule fires, every suppression is honoured.

Each rule gets a fixture proving (a) the violation is caught and (b) a
``# repro: allow[REPxxx]`` comment silences exactly that finding.  The
acceptance pins ride at the end: the checker exits 0 over the repo's own
``src/`` tree and 1 over a fixture tree violating each rule.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools import (
    ALL_RULES,
    RULES_BY_ID,
    UNUSED_SUPPRESSION,
    CheckError,
    check_paths,
    check_source,
    format_json,
    format_rule_listing,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_cli(*argv: str) -> int:
    return main(list(argv))


def write(tmp_path: Path, relpath: str, source: str) -> Path:
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


# One fixture per rule: (relpath, violating source, suppressed source).
RULE_FIXTURES = {
    "REP001": (
        "mod.py",
        'import json\n\nblob = json.dumps({"a": 1})\n',
        'import json\n\nblob = json.dumps({"a": 1})  # repro: allow[REP001] scratch\n',
    ),
    "REP002": (
        "mod.py",
        "import random\n\nvalue = random.random()\n",
        "import random\n\nvalue = random.random()  # repro: allow[REP002] demo\n",
    ),
    "REP003": (
        "mod.py",
        "import time\n\nstamp = time.time()\n",
        "import time\n\nstamp = time.time()  # repro: allow[REP003] timing\n",
    ),
    "REP004": (
        "mod.py",
        "total = sum({1.0, 2.0, 3.0})\n",
        "total = sum({1.0, 2.0, 3.0})  # repro: allow[REP004] constants\n",
    ),
    "REP005": (
        "serve/daemon.py",
        "async def feed(self, key):\n"
        "    session = self.sessions[key]\n"
        "    session.counter = 1\n",
        "async def feed(self, key):\n"
        "    session = self.sessions[key]\n"
        "    session.counter = 1  # repro: allow[REP005] single-writer startup\n",
    ),
    "REP006": (
        "mod.py",
        "try:\n    x = 1\nexcept:\n    pass\n",
        "try:\n    x = 1\nexcept:  # repro: allow[REP006] prototype\n    pass\n",
    ),
    "REP007": (
        "mod.py",
        '__all__ = ["ghost"]\n',
        '__all__ = ["ghost"]  # repro: allow[REP007] lazy attr\n',
    ),
}


# ----------------------------------------------------------------------
# the rule set itself
# ----------------------------------------------------------------------
def test_rule_registry_is_complete():
    assert sorted(RULES_BY_ID) == sorted(RULE_FIXTURES)
    assert len(ALL_RULES) == 7
    listing = format_rule_listing()
    for rule_id in RULES_BY_ID:
        assert rule_id in listing
    assert UNUSED_SUPPRESSION in listing


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_rule_fires(tmp_path, rule_id):
    relpath, bad, _ = RULE_FIXTURES[rule_id]
    write(tmp_path, relpath, bad)
    result = check_paths([tmp_path])
    assert [d.rule for d in result.diagnostics] == [rule_id]
    diagnostic = result.diagnostics[0]
    assert diagnostic.line > 0 and diagnostic.path.endswith(relpath)


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_allow_comment_silences_rule(tmp_path, rule_id):
    relpath, _, ok = RULE_FIXTURES[rule_id]
    write(tmp_path, relpath, ok)
    result = check_paths([tmp_path])
    assert result.ok, [d.render() for d in result.diagnostics]
    assert result.suppressed == 1


def test_standalone_allow_comment_covers_next_code_line(tmp_path):
    write(
        tmp_path,
        "mod.py",
        "import time\n"
        "\n"
        "# repro: allow[REP003] wall-clock wanted here: operator-facing banner\n"
        "# (second comment line between allow and code is fine)\n"
        "stamp = time.time()\n",
    )
    result = check_paths([tmp_path])
    assert result.ok and result.suppressed == 1


def test_unused_suppression_is_reported(tmp_path):
    write(tmp_path, "mod.py", "x = 1  # repro: allow[REP001] nothing here\n")
    result = check_paths([tmp_path])
    assert [d.rule for d in result.diagnostics] == [UNUSED_SUPPRESSION]
    assert "silences nothing" in result.diagnostics[0].message


def test_unknown_rule_in_suppression_is_reported(tmp_path):
    write(tmp_path, "mod.py", "x = 1  # repro: allow[REP999]\n")
    result = check_paths([tmp_path])
    assert [d.rule for d in result.diagnostics] == [UNUSED_SUPPRESSION]
    assert "unknown rule" in result.diagnostics[0].message


def test_prose_mentioning_allow_syntax_is_not_a_suppression(tmp_path):
    write(
        tmp_path,
        "mod.py",
        "#: docs say `# repro: allow[REP001]` silences a finding\nx = 1\n",
    )
    assert check_paths([tmp_path]).ok


# ----------------------------------------------------------------------
# rule scoping
# ----------------------------------------------------------------------
def test_tests_are_exempt(tmp_path):
    write(tmp_path, "tests/test_thing.py", "import random\n\nv = random.random()\n")
    assert check_paths([tmp_path]).ok


def test_obs_layer_may_read_wall_clock(tmp_path):
    write(tmp_path, "obs/clock.py", "import time\n\nstamp = time.time()\n")
    assert check_paths([tmp_path]).ok


def test_rep005_only_applies_to_the_daemon_module(tmp_path):
    source = "async def feed(self, key):\n    session = self.sessions[key]\n    session.n = 1\n"
    write(tmp_path, "other.py", source)
    assert check_paths([tmp_path]).ok


def test_rep005_locked_and_executor_writes_pass(tmp_path):
    write(
        tmp_path,
        "serve/daemon.py",
        "async def feed(self, key):\n"
        "    async with self._locks[key]:\n"
        "        self.sessions[key].counter = 1\n"
        "\n"
        "def worker_side(session):\n"
        "    session.counter = 2\n",
    )
    assert check_paths([tmp_path]).ok


def test_rep004_values_accumulation_gates_only_metric_export_layer(tmp_path):
    source = "def total(loads):\n    return sum(loads.values())\n"
    write(tmp_path, "plain/mod.py", source)
    assert check_paths([tmp_path]).ok
    write(tmp_path, "results/export.py", source)
    result = check_paths([tmp_path / "results"])
    assert [d.rule for d in result.diagnostics] == ["REP004"]


def test_rep007_catches_unexported_public_def(tmp_path):
    write(tmp_path, "mod.py", '__all__ = ["f"]\n\n\ndef f():\n    pass\n\n\ndef g():\n    pass\n')
    result = check_paths([tmp_path])
    assert [d.rule for d in result.diagnostics] == ["REP007"]
    assert "'g'" in result.diagnostics[0].message


def test_rep001_dynamic_sort_keys_and_splats_pass(tmp_path):
    write(
        tmp_path,
        "mod.py",
        "import json\n"
        "\n"
        "def dump(payload, flag, kwargs):\n"
        "    a = json.dumps(payload, sort_keys=flag)\n"
        "    b = json.dumps(payload, **kwargs)\n"
        "    return a, b\n",
    )
    assert check_paths([tmp_path]).ok


def test_rep002_seeded_constructors_pass(tmp_path):
    write(
        tmp_path,
        "mod.py",
        "import random\n"
        "import numpy as np\n"
        "\n"
        "rng = random.Random(7)\n"
        "gen = np.random.default_rng(7)\n",
    )
    assert check_paths([tmp_path]).ok


# ----------------------------------------------------------------------
# engine behaviour
# ----------------------------------------------------------------------
def test_rule_filter_narrows_reporting_not_accounting(tmp_path):
    write(
        tmp_path,
        "mod.py",
        "import json\nimport time\n\n"
        'blob = json.dumps({"a": 1})\n'
        "stamp = time.time()  # repro: allow[REP003] timing\n",
    )
    result = check_paths([tmp_path], rule_filter=["REP001"])
    assert [d.rule for d in result.diagnostics] == ["REP001"]
    # The REP003 suppression stayed "used" even though REP003 was filtered.
    assert result.suppressed == 1


def test_unknown_rule_filter_raises(tmp_path):
    with pytest.raises(CheckError, match="unknown rule"):
        check_paths([tmp_path], rule_filter=["REP123"])


def test_missing_path_raises():
    with pytest.raises(CheckError, match="no such file"):
        check_paths(["/does/not/exist"])


def test_syntax_error_is_located(tmp_path):
    write(tmp_path, "mod.py", "def broken(:\n")
    with pytest.raises(CheckError, match=r"mod\.py:1: syntax error"):
        check_paths([tmp_path])


def test_check_source_reports_and_counts(tmp_path):
    diagnostics, suppressed = check_source(
        'import json\nblob = json.dumps({"a": 1})\n', "mod.py"
    )
    assert [d.rule for d in diagnostics] == ["REP001"]
    assert suppressed == 0


def test_json_report_is_sorted_and_byte_stable(tmp_path):
    write(tmp_path, "mod.py", "import time\n\nstamp = time.time()\n")
    result = check_paths([tmp_path])
    blob = format_json(result)
    assert blob == format_json(check_paths([tmp_path]))
    payload = json.loads(blob)
    assert payload["ok"] is False
    assert payload["findings"][0]["rule"] == "REP003"
    assert json.dumps(payload, indent=2, sort_keys=True) + "\n" == blob


# ----------------------------------------------------------------------
# CLI + acceptance pins
# ----------------------------------------------------------------------
def test_cli_exits_zero_on_repo_src(capsys):
    # The self-hosting gate: the repo's own src/ tree must stay clean
    # (zero unsuppressed diagnostics, zero unused suppressions).
    assert run_cli("check", str(REPO_ROOT / "src")) == 0
    assert "0 finding(s)" in capsys.readouterr().out


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_cli_exits_one_on_each_violation(tmp_path, capsys, rule_id):
    relpath, bad, _ = RULE_FIXTURES[rule_id]
    write(tmp_path, relpath, bad)
    assert run_cli("check", str(tmp_path)) == 1
    assert rule_id in capsys.readouterr().out


def test_cli_json_format(tmp_path, capsys):
    relpath, bad, _ = RULE_FIXTURES["REP001"]
    write(tmp_path, relpath, bad)
    assert run_cli("check", "--format", "json", str(tmp_path)) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"][0]["rule"] == "REP001"


def test_cli_rule_filter_and_unknown_rule(tmp_path, capsys):
    write(tmp_path, "mod.py", "import time\n\nstamp = time.time()\n")
    assert run_cli("check", "--rule", "REP001", str(tmp_path)) == 0
    assert run_cli("check", "--rule", "REP123", str(tmp_path)) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert run_cli("check", "--list-rules") == 0
    out = capsys.readouterr().out
    assert "REP001" in out and "REP007" in out
