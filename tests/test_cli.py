"""The ``repro`` CLI: parsing, exit codes, and end-to-end subcommand flows."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import (
    BENCH_MODULES,
    CLIError,
    SCENARIO_SETS,
    TOPOLOGIES,
    build_parser,
    main,
    parse_protocols,
)
from repro.results import ResultsStore

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_cli(*argv: str) -> int:
    return main(list(argv))


# ----------------------------------------------------------------------
# parsing and exit codes
# ----------------------------------------------------------------------
def test_help_exits_zero(capsys):
    with pytest.raises(SystemExit) as excinfo:
        run_cli("--help")
    assert excinfo.value.code == 0
    assert "sweep" in capsys.readouterr().out


@pytest.mark.parametrize("command", ["sweep", "replay", "bench", "results"])
def test_subcommand_help_exits_zero(command, capsys):
    with pytest.raises(SystemExit) as excinfo:
        run_cli(command, "--help")
    assert excinfo.value.code == 0
    assert command in capsys.readouterr().out


def test_missing_subcommand_is_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        run_cli()
    assert excinfo.value.code == 2


def test_unknown_topology_is_usage_error(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        run_cli("sweep", "--topology", "not-a-topology", "--store", str(tmp_path / "r.sqlite"))
    assert excinfo.value.code == 2


def test_unknown_run_reference_exits_two(tmp_path, capsys):
    code = run_cli("results", "show", "nope", "--store", str(tmp_path / "r.sqlite"))
    assert code == 2
    assert "unknown run" in capsys.readouterr().err


def test_bench_rejects_contradictory_smoke_full(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        run_cli("bench", "--smoke", "--full", "--store", str(tmp_path / "r.sqlite"))
    assert excinfo.value.code == 2


def test_bench_rejects_missing_benchmarks_dir(tmp_path, capsys):
    code = run_cli(
        "bench",
        "--benchmarks-dir", str(tmp_path / "nowhere"),
        "--store", str(tmp_path / "r.sqlite"),
    )
    assert code == 2
    assert "benchmarks directory" in capsys.readouterr().err


def test_registries_are_wired():
    parser = build_parser()
    assert parser is not None
    assert "abilene" in TOPOLOGIES
    assert "single-link-failures" in SCENARIO_SETS
    assert set(BENCH_MODULES) == {"routing", "online"}


# ----------------------------------------------------------------------
# protocol parameter passthrough
# ----------------------------------------------------------------------
def test_parse_protocols_passthrough():
    specs = parse_protocols("OSPF,SPEF:beta=2.0,FortzThorup:seed=1:restarts=2")
    assert [spec.protocol for spec in specs] == ["OSPF", "SPEF", "FortzThorup"]
    assert dict(specs[1].params) == {"beta": 2.0}
    assert dict(specs[2].params) == {"seed": 1, "restarts": 2}
    # Parameters reach the built protocol (beta configures SPEF's objective).
    assert specs[1].build() is not None
    assert specs[1].display_name == "SPEF(beta=2.0)"


def test_parse_protocols_coercion_and_errors():
    (spec,) = parse_protocols("OSPF:backend=sparse")
    assert dict(spec.params) == {"backend": "sparse"}
    with pytest.raises(CLIError):
        parse_protocols("NotAProtocol")
    with pytest.raises(CLIError):
        parse_protocols("SPEF:beta2.0")  # missing '='
    with pytest.raises(CLIError):
        parse_protocols("")
    # A typo'd parameter key is a usage error up front, never a recorded
    # sweep of all-infeasible cells.
    with pytest.raises(CLIError):
        parse_protocols("SPEF:bogus=1")


def test_sweep_accepts_protocol_parameters_and_parallel(tmp_path, capsys):
    store_path = tmp_path / "r.sqlite"
    code = run_cli(
        "sweep",
        "--topology", "abilene",
        "--protocols", "MinHopOSPF,OSPF:backend=sparse",
        "--scenarios", "single-link-failures",
        "--limit", "4",
        "--no-cache",
        "--parallel",
        "--store", str(store_path),
    )
    assert code == 0
    capsys.readouterr()
    with ResultsStore(store_path) as store:
        runs = store.runs(kind="sweep")
        assert len(runs) == 1
        assert runs[0].config["parallel"] is True
        protocols = set(runs[0].protocols)
        assert protocols == {"MinHopOSPF", "OSPF(backend=sparse)"}
        assert len(store.records(runs[0].run_id)) == 8


def test_replay_with_closed_loop_policy_records(tmp_path, capsys):
    store_path = tmp_path / "r.sqlite"
    code = run_cli(
        "replay",
        "--topology", "abilene",
        "--limit", "2",
        "--policy", "closed-loop",
        "--mlu-target", "0.5",
        "--hold", "10",
        "--reopt-evaluations", "20",
        "--store", str(store_path),
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "policy closed-loop" in out
    with ResultsStore(store_path) as store:
        (run,) = store.runs(kind="replay")
        assert run.config["policy"] == "closed-loop"
        assert run.config["reoptimizations"] >= 1
        records = store.records(run.run_id)
        assert all("reoptimizations" in record for record in records)


# ----------------------------------------------------------------------
# sweep / replay record into the store
# ----------------------------------------------------------------------
def test_sweep_records_run_and_prints_summary(tmp_path, capsys):
    store_path = tmp_path / "r.sqlite"
    code = run_cli(
        "sweep",
        "--topology", "abilene",
        "--protocols", "OSPF",
        "--scenarios", "single-link-failures",
        "--limit", "3",
        "--no-cache",
        "--store", str(store_path),
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Robustness summary" in out
    assert "recorded run" in out
    with ResultsStore(store_path) as store:
        runs = store.runs(kind="sweep")
        assert len(runs) == 1
        assert runs[0].topology == "Abilene"
        assert runs[0].config["scenario_set_name"] == "single-link-failures"
        assert len(store.records(runs[0].run_id)) == 3


def test_replay_records_one_row_per_outage(tmp_path, capsys):
    store_path = tmp_path / "r.sqlite"
    code = run_cli(
        "replay",
        "--topology", "abilene",
        "--limit", "2",
        "--store", str(store_path),
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Per-outage sustained state" in out
    assert "worst outage" in out
    with ResultsStore(store_path) as store:
        runs = store.runs(kind="replay")
        assert len(runs) == 1
        records = store.records(runs[0].run_id)
        assert len(records) == 2
        assert all("mlu" in record and "scenario" in record for record in records)


# ----------------------------------------------------------------------
# results subcommands end to end
# ----------------------------------------------------------------------
@pytest.fixture
def seeded_store(tmp_path) -> Path:
    """A store holding the two committed bench views as imported runs."""
    store_path = tmp_path / "r.sqlite"
    code = main(
        [
            "results", "import",
            str(REPO_ROOT / "BENCH_routing.json"),
            str(REPO_ROOT / "BENCH_online.json"),
            "--store", str(store_path),
        ]
    )
    assert code == 0
    return store_path


def test_results_list_and_show(seeded_store, capsys):
    assert run_cli("results", "list", "--store", str(seeded_store)) == 0
    out = capsys.readouterr().out
    assert "routing-backend" in out and "online-controller" in out

    assert run_cli(
        "results", "show", "latest:routing-backend", "--json", "--store", str(seeded_store)
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["manifest"]["benchmark"] == "routing-backend"
    assert len(payload["records"]) == 4


def test_results_query_filters(seeded_store, capsys):
    assert run_cli(
        "results", "query",
        "--benchmark", "routing-backend",
        "--workload", "ecmp-sweep",
        "--json",
        "--store", str(seeded_store),
    ) == 0
    rows = json.loads(capsys.readouterr().out)
    assert len(rows) == 2
    assert {row["topology"] for row in rows} == {"abilene", "rocketfuel"}


def test_results_export_reproduces_committed_views(seeded_store, tmp_path, capsys):
    """The acceptance flow: exported views match BENCH_*.json byte-for-byte."""
    for bench_name, filename in [
        ("routing-backend", "BENCH_routing.json"),
        ("online-controller", "BENCH_online.json"),
    ]:
        out_path = tmp_path / f"exported-{filename}"
        assert run_cli(
            "results", "export", bench_name,
            "-o", str(out_path),
            "--store", str(seeded_store),
        ) == 0
        assert out_path.read_bytes() == (REPO_ROOT / filename).read_bytes()
    capsys.readouterr()


def test_results_export_is_byte_stable_across_reexport(seeded_store, tmp_path, capsys):
    first = tmp_path / "first.json"
    assert run_cli(
        "results", "export", "routing-backend", "-o", str(first), "--store", str(seeded_store)
    ) == 0
    assert run_cli("results", "import", str(first), "--store", str(seeded_store)) == 0
    second = tmp_path / "second.json"
    assert run_cli(
        "results", "export", "routing-backend", "-o", str(second), "--store", str(seeded_store)
    ) == 0
    capsys.readouterr()
    assert first.read_bytes() == second.read_bytes()


def test_results_diff_clean_and_exit_codes(seeded_store, capsys):
    """Diffing a run against the view it was imported from is clean (exit 0)."""
    code = run_cli(
        "results", "diff",
        "latest:routing-backend",
        str(REPO_ROOT / "BENCH_routing.json"),
        "--store", str(seeded_store),
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "OK: no hard metric mismatches" in out


def test_results_diff_hard_failure_sets_exit_code(seeded_store, tmp_path, capsys):
    view = json.loads((REPO_ROOT / "BENCH_routing.json").read_text())
    view["results"][0]["max_abs_load_diff"] = 0.5  # a correctness regression
    broken = tmp_path / "broken.json"
    broken.write_text(json.dumps(view))

    code = run_cli(
        "results", "diff",
        "latest:routing-backend", str(broken),
        "--store", str(seeded_store),
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "FAIL" in out

    # --fail-on none reports the same mismatch but keeps the exit code 0.
    code = run_cli(
        "results", "diff",
        "latest:routing-backend", str(broken),
        "--fail-on", "none",
        "--store", str(seeded_store),
    )
    capsys.readouterr()
    assert code == 0


def test_results_diff_missing_record_sets_exit_code(seeded_store, tmp_path, capsys):
    view = json.loads((REPO_ROOT / "BENCH_routing.json").read_text())
    del view["results"][0]  # a benchmark record vanished
    truncated = tmp_path / "truncated.json"
    truncated.write_text(json.dumps(view))

    code = run_cli(
        "results", "diff",
        "latest:routing-backend", str(truncated),
        "--store", str(seeded_store),
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "present on one side only" in out


def test_results_diff_timing_drift_is_informational(seeded_store, tmp_path, capsys):
    view = json.loads((REPO_ROOT / "BENCH_routing.json").read_text())
    view["results"][0]["sparse_seconds"] *= 10  # timing drift only
    drifted = tmp_path / "drifted.json"
    drifted.write_text(json.dumps(view))

    code = run_cli(
        "results", "diff",
        "latest:routing-backend", str(drifted),
        "--store", str(seeded_store),
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "drift" in out
    assert "OK: no hard metric mismatches" in out


def test_results_gc_keeps_newest_per_family(seeded_store, capsys):
    # Import the routing view twice more: 3 view-import runs of
    # routing-backend, 1 of online-controller.
    for _ in range(2):
        assert run_cli(
            "results", "import", str(REPO_ROOT / "BENCH_routing.json"),
            "--store", str(seeded_store),
        ) == 0
    assert run_cli(
        "results", "gc", "--keep-last", "1", "--store", str(seeded_store)
    ) == 0
    out = capsys.readouterr().out
    assert "deleted 2 run(s)" in out
    with ResultsStore(seeded_store) as store:
        assert len(store.runs(benchmark="routing-backend")) == 1
        # The other family is untouched: retention is per (kind, benchmark).
        assert len(store.runs(benchmark="online-controller")) == 1
    # A second gc has nothing to do.
    assert run_cli(
        "results", "gc", "--keep-last", "1", "--store", str(seeded_store)
    ) == 0
    assert "nothing to delete" in capsys.readouterr().out


def test_results_delete(seeded_store, capsys):
    assert run_cli(
        "results", "delete", "latest:online-controller", "--store", str(seeded_store)
    ) == 0
    capsys.readouterr()
    with ResultsStore(seeded_store) as store:
        assert store.runs(benchmark="online-controller") == []
        assert len(store.runs(benchmark="routing-backend")) == 1


# ----------------------------------------------------------------------
# telemetry surface: trace, results plot, --format
# ----------------------------------------------------------------------
def test_trace_sweep_writes_jsonl_and_summary(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    code = run_cli(
        "trace", "sweep",
        "--topology", "abilene",
        "--protocols", "OSPF",
        "--scenarios", "single-link-failures",
        "--limit", "4",
        "--trace", str(trace_path),
        "--summary",
        "--store", str(tmp_path / "r.sqlite"),
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "wrote" in out and "trace line(s)" in out
    assert "telemetry summary" in out
    assert "dspt.update" in out  # incremental-vs-fallback counters surfaced
    lines = [json.loads(line) for line in trace_path.read_text().splitlines()]
    assert lines[0]["type"] == "meta"
    assert any(rec["type"] == "span" and rec["name"] == "controller.cell" for rec in lines)
    assert any(
        rec["type"] == "histogram" and rec["name"] == "dspt.cone_fraction"
        for rec in lines
    )
    # The traced sweep persisted its telemetry digest into the manifest.
    with ResultsStore(tmp_path / "r.sqlite") as store:
        (run,) = store.runs(kind="sweep")
        assert "dspt_fallback_rate" in run.timings
        telemetry_records = [
            record for record in store.records(run.run_id)
            if record.get("scenario") == "__telemetry__"
        ]
        assert len(telemetry_records) == 1
        assert telemetry_records[0]["incremental_updates"] > 0


def test_trace_replay_writes_jsonl(tmp_path, capsys):
    trace_path = tmp_path / "replay.jsonl"
    code = run_cli(
        "trace", "replay",
        "--topology", "abilene",
        "--limit", "2",
        "--trace", str(trace_path),
        "--store", str(tmp_path / "r.sqlite"),
    )
    assert code == 0
    capsys.readouterr()
    lines = [json.loads(line) for line in trace_path.read_text().splitlines()]
    assert any(
        rec["type"] == "span" and rec["name"] == "replay.trace" for rec in lines
    )
    assert any(
        rec["type"] == "histogram" and rec["name"] == "replay.sustained_mlu"
        for rec in lines
    )
    with ResultsStore(tmp_path / "r.sqlite") as store:
        (run,) = store.runs(kind="replay")
        assert "dspt_fallback_rate" in run.timings


def test_trace_sweep_profiling_exports_and_records(tmp_path, capsys):
    """--memory/--chrome-trace/--flamegraph ride one traced sweep."""
    trace_path = tmp_path / "trace.jsonl"
    chrome_path = tmp_path / "chrome.json"
    flame_path = tmp_path / "flame.txt"
    code = run_cli(
        "trace", "sweep",
        "--topology", "abilene",
        "--protocols", "OSPF",
        "--scenarios", "single-link-failures",
        "--limit", "3",
        "--trace", str(trace_path),
        "--chrome-trace", str(chrome_path),
        "--flamegraph", str(flame_path),
        "--memory",
        "--store", str(tmp_path / "r.sqlite"),
    )
    assert code == 0
    out = capsys.readouterr().out
    assert str(chrome_path) in out and str(flame_path) in out
    # Schema-2 jsonl with memory meta and derived aggregate lines.
    lines = [json.loads(line) for line in trace_path.read_text().splitlines()]
    assert lines[0]["schema"] == 2 and lines[0]["memory"] is True
    assert any(rec["type"] == "span_stats" for rec in lines)
    assert all("alloc" in rec for rec in lines if rec["type"] == "span")
    # Chrome trace: complete events under a top-level traceEvents list.
    chrome = json.loads(chrome_path.read_text())
    assert any(event["ph"] == "X" for event in chrome["traceEvents"])
    # Flamegraph: collapsed stacks with integer sample values.
    rows = flame_path.read_text().splitlines()
    assert rows and all(row.rpartition(" ")[2].isdigit() for row in rows)
    assert any("controller.sweep;controller.cell" in row for row in rows)
    # The run persisted per-span __profile__ records for `results perf`.
    with ResultsStore(tmp_path / "r.sqlite") as store:
        (run,) = store.runs(kind="sweep")
        profile = [
            record for record in store.records(run.run_id)
            if record.get("scenario") == "__profile__"
        ]
        assert profile and all("self_seconds" in record for record in profile)
        assert {record["span"] for record in profile} >= {"controller.cell"}


def test_sweep_controller_flags_change_counters_not_results(tmp_path, capsys):
    """--max-affected-fraction steers fallbacks; the MLUs must not move."""
    mlus = {}
    for fraction in ("0.5", "0.05"):
        trace_path = tmp_path / f"t{fraction}.jsonl"
        assert run_cli(
            "trace", "sweep",
            "--topology", "abilene",
            "--protocols", "OSPF",
            "--scenarios", "single-link-failures",
            "--max-affected-fraction", fraction,
            "--trace", str(trace_path),
            "--store", str(tmp_path / f"r{fraction}.sqlite"),
        ) == 0
        capsys.readouterr()
        with ResultsStore(tmp_path / f"r{fraction}.sqlite") as store:
            (run,) = store.runs(kind="sweep")
            records = store.records(run.run_id)
            mlus[fraction] = [
                (rec["scenario"], rec["mlu"]) for rec in records
                if not str(rec.get("scenario", "")).startswith("__")
            ]
            (digest,) = [
                rec for rec in records if rec.get("scenario") == "__telemetry__"
            ]
            if fraction == "0.05":
                tighter = digest["fallback_total"]
            else:
                looser = digest["fallback_total"]
    assert mlus["0.5"] == mlus["0.05"]  # fallback is results-identical
    assert tighter > looser  # but the tighter cone budget falls back more


def test_results_plot_terminal_and_png(tmp_path, capsys):
    store_path = tmp_path / "r.sqlite"
    # Two runs so there is a trend to draw.
    for utilization in ("0.1", "0.12"):
        assert run_cli(
            "sweep",
            "--topology", "abilene",
            "--protocols", "OSPF",
            "--scenarios", "single-link-failures",
            "--limit", "3",
            "--utilization", utilization,
            "--no-cache",
            "--store", str(store_path),
        ) == 0
    capsys.readouterr()
    png_path = tmp_path / "trend.png"
    code = run_cli(
        "results", "plot",
        "--metric", "max_utilization",
        "--agg", "max",
        "--png", str(png_path),
        "--store", str(store_path),
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "max_utilization" in out and "n=2" in out
    assert png_path.read_bytes().startswith(b"\x89PNG\r\n\x1a\n")

    # --png-backend builtin forces the stdlib raster writer regardless of
    # whether matplotlib is importable.
    builtin_path = tmp_path / "trend-builtin.png"
    code = run_cli(
        "results", "plot",
        "--metric", "max_utilization",
        "--agg", "max",
        "--png", str(builtin_path),
        "--png-backend", "builtin",
        "--store", str(store_path),
    )
    assert code == 0
    assert "(builtin backend)" in capsys.readouterr().out
    assert builtin_path.read_bytes().startswith(b"\x89PNG\r\n\x1a\n")

    code = run_cli(
        "results", "plot", "--metric", "not_a_metric", "--store", str(store_path)
    )
    assert code == 2
    assert "no numeric values" in capsys.readouterr().err


def test_write_png_backend_validation(tmp_path, monkeypatch):
    import builtins

    from repro.results.plotting import PlotError, TrendPoint, TrendSeries, write_png

    series = [TrendSeries(label="s", points=[
        TrendPoint(run_id="r1", created_at="t1", git_sha="sha", value=1.0),
        TrendPoint(run_id="r2", created_at="t2", git_sha="sha", value=2.0),
    ])]
    with pytest.raises(PlotError, match="unknown png backend"):
        write_png(str(tmp_path / "x.png"), series, "m", backend="gnuplot")
    # Pretend matplotlib is uninstallable: forcing it is an error, auto
    # falls back to the stdlib raster path.
    real_import = builtins.__import__

    def no_matplotlib(name, *args, **kwargs):
        if name.startswith("matplotlib"):
            raise ImportError("matplotlib disabled for this test")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", no_matplotlib)
    with pytest.raises(PlotError, match="matplotlib is not importable"):
        write_png(str(tmp_path / "x.png"), series, "m", backend="matplotlib")
    assert write_png(str(tmp_path / "auto.png"), series, "m") == "builtin"
    assert (tmp_path / "auto.png").read_bytes().startswith(b"\x89PNG\r\n\x1a\n")


def test_results_format_flags(seeded_store, capsys):
    assert run_cli(
        "results", "list", "--format", "csv", "--store", str(seeded_store)
    ) == 0
    header, *rows = capsys.readouterr().out.splitlines()
    assert header.startswith("run,kind,benchmark")
    assert len(rows) == 2

    assert run_cli(
        "results", "query",
        "--benchmark", "routing-backend",
        "--format", "json",
        "--store", str(seeded_store),
    ) == 0
    parsed = json.loads(capsys.readouterr().out)
    assert parsed and all("run_id" in row for row in parsed)

    assert run_cli(
        "results", "query",
        "--benchmark", "routing-backend",
        "--format", "csv",
        "--store", str(seeded_store),
    ) == 0
    csv_out = capsys.readouterr().out
    assert csv_out.splitlines()[0].startswith("run_id,")
    assert len(csv_out.splitlines()) == len(parsed) + 1

    assert run_cli(
        "results", "show", "latest:routing-backend",
        "--format", "csv",
        "--store", str(seeded_store),
    ) == 0
    shown = capsys.readouterr().out
    assert shown.splitlines()[0].count(",") >= 2  # records-only CSV

    with pytest.raises(SystemExit):  # argparse rejects unknown formats
        run_cli("results", "list", "--format", "yaml", "--store", str(seeded_store))


# ----------------------------------------------------------------------
# event traces and the serve daemon
# ----------------------------------------------------------------------
def test_serve_help_exits_zero(capsys):
    with pytest.raises(SystemExit) as excinfo:
        run_cli("serve", "--help")
    assert excinfo.value.code == 0
    assert "--replay-trace" in capsys.readouterr().out


def test_replay_export_trace_then_trace_file_matches(tmp_path, capsys):
    store_path = tmp_path / "r.sqlite"
    trace_path = tmp_path / "trace.jsonl"
    assert run_cli(
        "replay",
        "--limit", "2",
        "--export-trace", str(trace_path),
        "--store", str(store_path),
    ) == 0
    assert "wrote 8 event(s)" in capsys.readouterr().out
    lines = [json.loads(line) for line in trace_path.read_text().splitlines()]
    assert all(line["v"] == 1 and "event" in line for line in lines)

    assert run_cli(
        "replay",
        "--trace-file", str(trace_path),
        "--store", str(store_path),
    ) == 0
    assert "replayed 8 events from" in capsys.readouterr().out
    with ResultsStore(store_path) as store:
        runs = store.runs(kind="replay")
        assert len(runs) == 2  # the exporting run and the trace-file run
        records = store.records(runs[0].run_id)
        event_records = [r for r in records if r.get("scenario", "").startswith("event-")]
        assert len(event_records) == 8
        assert all("mlu" in r and "kind" in r for r in event_records)


def test_replay_rejects_trace_file_with_export_trace(tmp_path, capsys):
    code = run_cli(
        "replay",
        "--trace-file", "a.jsonl",
        "--export-trace", "b.jsonl",
        "--store", str(tmp_path / "r.sqlite"),
    )
    assert code == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_replay_malformed_trace_exits_two_with_line_number(tmp_path, capsys):
    trace_path = tmp_path / "bad.jsonl"
    trace_path.write_text(
        '{"v": 1, "event": "noop", "time": 0.0}\n'
        '{"v": 1, "event": "link-failure", "time": 1.0}\n'
    )
    code = run_cli(
        "replay", "--trace-file", str(trace_path), "--store", str(tmp_path / "r.sqlite")
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "bad.jsonl:2" in err and "missing field" in err


def test_serve_malformed_trace_exits_two_with_line_number(tmp_path, capsys):
    trace_path = tmp_path / "bad.jsonl"
    trace_path.write_text("not json\n")
    code = run_cli(
        "serve", "--replay-trace", str(trace_path), "--store", str(tmp_path / "r.sqlite")
    )
    assert code == 2
    assert "bad.jsonl:1" in capsys.readouterr().err


def test_serve_soak_rejects_multiple_topologies(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    trace_path.write_text('{"v": 1, "event": "noop", "time": 0.0}\n')
    code = run_cli(
        "serve",
        "--topology", "abilene",
        "--topology", "cernet2",
        "--replay-trace", str(trace_path),
        "--store", str(tmp_path / "r.sqlite"),
    )
    assert code == 2
    assert "exactly one session" in capsys.readouterr().err


def test_serve_soak_diffs_clean_against_batch_replay(tmp_path, capsys):
    """The acceptance path CI gates on: socket soak == batch replay."""
    store_path = tmp_path / "r.sqlite"
    trace_path = tmp_path / "trace.jsonl"
    dump_path = tmp_path / "state.json"
    assert run_cli(
        "replay",
        "--limit", "3",
        "--export-trace", str(trace_path),
        "--store", str(store_path),
    ) == 0
    assert run_cli(
        "replay",
        "--trace-file", str(trace_path),
        "--store", str(store_path),
    ) == 0
    assert run_cli(
        "serve",
        "--replay-trace", str(trace_path),
        "--state-dump", str(dump_path),
        "--store", str(store_path),
    ) == 0
    out = capsys.readouterr().out
    assert "soaked 12 events through the serve socket" in out
    assert dump_path.exists()

    code = run_cli(
        "results", "diff",
        "latest:replay", "latest:serve",
        "--rtol", "1e-12", "--atol", "1e-15",
        "--store", str(store_path),
    )
    assert code == 0
    diff_out = capsys.readouterr().out
    assert "0 hard mismatch(es)" in diff_out
    assert "OK: no hard metric mismatches" in diff_out

    with ResultsStore(store_path) as store:
        (serve_run,) = store.runs(kind="serve")
        assert serve_run.config["command"] == "serve"
        assert serve_run.config["events"] == 12
