"""Unit and integration tests for the SPEF protocol (Algorithm 4)."""

import numpy as np
import pytest

from repro.core.forwarding import verify_split_consistency
from repro.core.objectives import LoadBalanceObjective
from repro.core.spef import SPEF, SPEFConfig
from repro.core.te_problem import TEProblem, solve_optimal_te
from repro.network.demands import TrafficMatrix
from repro.protocols.ospf import OSPF
from repro.protocols.spef_protocol import SPEFProtocol


class TestConfig:
    def test_invalid_solver_rejected(self):
        with pytest.raises(ValueError):
            SPEFConfig(te_solver="magic")

    def test_config_and_overrides_mutually_exclusive(self):
        with pytest.raises(ValueError):
            SPEF(config=SPEFConfig(), integer_weights=True)

    def test_overrides_build_config(self):
        spef = SPEF(integer_weights=True)
        assert spef.config.integer_weights is True


class TestPipeline:
    def test_fig4_achieves_optimal_te(self, fig4, fig4_tm):
        solution = SPEF().fit(fig4, fig4_tm)
        assert solution.optimality_gap() == pytest.approx(0.0, abs=1e-3)
        assert solution.max_link_utilization() < 1.0
        solution.flows.validate(fig4_tm, tolerance=1e-4)

    def test_realised_flows_close_to_target(self, fig4, fig4_tm):
        solution = SPEF().fit(fig4, fig4_tm)
        realised = solution.flows.aggregate()
        target = solution.target_flows
        assert np.max(np.abs(realised - target)) < 0.05 * np.max(target) + 1e-9

    def test_first_weights_positive_on_used_links(self, fig4, fig4_tm):
        solution = SPEF().fit(fig4, fig4_tm)
        used = solution.flows.aggregate() > 1e-6
        assert np.all(solution.first_weights[used] > 0)

    def test_second_weights_nonnegative(self, fig4, fig4_tm):
        solution = SPEF().fit(fig4, fig4_tm)
        assert np.all(solution.second_weights >= 0)

    def test_forwarding_tables_consistent_with_second_weights(self, fig4, fig4_tm):
        solution = SPEF().fit(fig4, fig4_tm)
        assert verify_split_consistency(
            fig4, solution.dags, solution.second_weights, solution.forwarding_tables
        )

    def test_route_wrapper(self, diamond_network, diamond_demands):
        flows = SPEF().route(diamond_network, diamond_demands)
        assert flows.flow_on(1, 2) == pytest.approx(4.0, abs=0.2)

    def test_diamond_even_split_is_optimal(self, diamond_network, diamond_demands):
        solution = SPEF().fit(diamond_network, diamond_demands)
        assert solution.flows.flow_on(1, 2) == pytest.approx(4.0, abs=0.2)
        assert solution.flows.flow_on(1, 3) == pytest.approx(4.0, abs=0.2)

    def test_dual_solver_variant(self, fig1, fig1_tm):
        config = SPEFConfig(te_solver="dual", alg1_max_iterations=2000)
        solution = SPEF(config=config).fit(fig1, fig1_tm)
        assert solution.first_result is not None
        assert solution.te_solution is None
        assert solution.max_link_utilization() <= 1.0 + 1e-6

    def test_frank_wolfe_solver_records_te_solution(self, fig1, fig1_tm):
        solution = SPEF().fit(fig1, fig1_tm)
        assert solution.te_solution is not None
        assert solution.first_result is None

    def test_utility_never_worse_than_ospf(self, fig4, fig4_tm):
        spef_solution = SPEF().fit(fig4, fig4_tm)
        ospf_flows = OSPF().route(fig4, fig4_tm)
        ospf_utility = LoadBalanceObjective.proportional().total_utility(
            ospf_flows.spare_capacity()
        )
        assert spef_solution.utility() >= ospf_utility - 1e-6

    @pytest.mark.parametrize("beta", [0.0, 1.0, 5.0])
    def test_all_paper_betas_run(self, fig4, fig4_tm, beta):
        solution = SPEF(objective=LoadBalanceObjective(beta=beta)).fit(fig4, fig4_tm)
        # beta = 0 legitimately saturates the bottleneck (Fig. 6 shows link 1
        # at 100% for SPEF0); allow the NEM tolerance on top of that.
        assert solution.max_link_utilization() <= 1.0 + 5e-3
        assert solution.flows.conservation_violation(fig4_tm) < 1e-6


class TestIntegerWeights:
    def test_integer_weights_are_integers(self, fig4, fig4_tm):
        solution = SPEF(integer_weights=True).fit(fig4, fig4_tm)
        assert np.allclose(solution.first_weights, np.rint(solution.first_weights))
        assert np.all(solution.first_weights >= 1.0)

    def test_integer_weights_keep_feasibility(self, fig4, fig4_tm):
        solution = SPEF(integer_weights=True).fit(fig4, fig4_tm)
        assert solution.flows.conservation_violation(fig4_tm) < 1e-6

    def test_raw_weights_preserved(self, fig4, fig4_tm):
        solution = SPEF(integer_weights=True).fit(fig4, fig4_tm)
        assert not np.allclose(solution.first_weights, solution.raw_first_weights)


class TestPathDiversity:
    def test_equal_cost_paths_per_pair(self, diamond_network, diamond_demands):
        solution = SPEF().fit(diamond_network, diamond_demands)
        assert solution.equal_cost_paths(1, 4) >= 2
        assert solution.equal_cost_paths(4, 1) == 0  # unreachable direction

    def test_histogram_counts_all_pairs(self, fig4, fig4_tm):
        solution = SPEF().fit(fig4, fig4_tm)
        histogram = solution.equal_cost_path_histogram()
        total_pairs = sum(histogram.values())
        n = fig4.num_nodes
        # Only destinations with demand have DAGs; pairs counted are
        # (n - 1) per destination DAG.
        assert total_pairs == len(solution.dags) * (n - 1)


class TestSPEFProtocolAdapter:
    def test_with_beta_names(self):
        assert SPEFProtocol.with_beta(5).name == "SPEF5"
        assert SPEFProtocol().name == "SPEF(beta=1)"

    def test_route_and_last_solution(self, fig4, fig4_tm):
        protocol = SPEFProtocol()
        flows = protocol.route(fig4, fig4_tm)
        assert protocol.last_solution is not None
        assert np.allclose(flows.aggregate(), protocol.last_solution.flows.aggregate())

    def test_split_ratios_reuse_last_solution(self, fig4, fig4_tm):
        protocol = SPEFProtocol()
        protocol.route(fig4, fig4_tm)
        first_solution = protocol.last_solution
        ratios = protocol.split_ratios(fig4, fig4_tm)
        assert protocol.last_solution is first_solution
        assert set(ratios) == set(fig4_tm.destinations())

    def test_evaluate_returns_metrics(self, fig4, fig4_tm):
        evaluation = SPEFProtocol().evaluate(fig4, fig4_tm)
        assert evaluation.max_link_utilization < 1.0
        assert np.isfinite(evaluation.normalized_utility)
        row = evaluation.as_row()
        assert row["protocol"].startswith("SPEF")


class TestOptimalityAcrossObjectives:
    @pytest.mark.parametrize("beta", [1.0, 2.0])
    def test_spef_matches_centralized_optimum(self, fig4, fig4_tm, beta):
        objective = LoadBalanceObjective(beta=beta)
        central = solve_optimal_te(TEProblem(fig4, fig4_tm, objective))
        solution = SPEF(objective=objective).fit(fig4, fig4_tm)
        assert solution.utility() == pytest.approx(central.utility, rel=1e-2)

    def test_degenerate_single_demand(self, line_network):
        demands = TrafficMatrix({(1, 4): 2.0})
        solution = SPEF().fit(line_network, demands)
        assert solution.flows.flow_on(1, 2) == pytest.approx(2.0)
        assert solution.flows.flow_on(3, 4) == pytest.approx(2.0)
