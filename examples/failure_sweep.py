"""Failure sweep: every Abilene trunk failure, SPEF vs OSPF, batch-evaluated.

The paper compares SPEF and OSPF on intact topologies (Fig. 9/10); this
example asks the operational question instead: *how do they hold up when a
fibre is cut?*  It enumerates every single-trunk failure of Abilene, routes
each perturbed instance with OSPF, SPEF and the re-optimised min-max LP
oracle through the cached parallel batch runner, and prints

* the per-protocol robustness summary (mean / median / worst-case / CVaR
  MLU, regret vs. re-optimising after the failure), and
* the scenarios where OSPF and SPEF leave the most performance on the table.

The sweep is run twice to demonstrate the on-disk result cache: the second
pass is served from cache and reports its speedup.

Run with:  PYTHONPATH=src python examples/failure_sweep.py
"""

from __future__ import annotations

import tempfile
import time

from repro.analysis.experiments import scenario_robustness_sweep, standard_instances
from repro.analysis.reporting import format_regret, format_robustness_summary
from repro.scenarios import BatchRunner, single_link_failures


def main() -> None:
    instance = standard_instances()["Abilene"]
    network = instance.network
    demands = instance.at_fraction(0.5)  # failures hurt but stay routable
    scenarios = single_link_failures(network)
    print(
        f"Topology: {network.name} ({network.num_nodes} nodes, {network.num_links} links)\n"
        f"Scenarios: baseline + {len(scenarios)} single-trunk failures\n"
        f"Protocols: OSPF, SPEF (+ re-optimised MinMaxMLU as the regret oracle)\n"
    )

    with tempfile.TemporaryDirectory(prefix="repro-scenarios-") as cache_dir:
        runner = BatchRunner(cache_dir=cache_dir)

        start = time.perf_counter()
        sweep = scenario_robustness_sweep(
            network, demands, scenarios=scenarios, protocols=("OSPF", "SPEF"), runner=runner
        )
        cold = time.perf_counter() - start
        stats = sweep["stats"]
        print(
            f"Cold run: {stats.total} evaluations in {cold:.2f}s "
            f"({stats.workers} workers, {stats.cache_hits} cache hits)"
        )

        start = time.perf_counter()
        scenario_robustness_sweep(
            network, demands, scenarios=scenarios, protocols=("OSPF", "SPEF"), runner=runner
        )
        warm = time.perf_counter() - start
        print(
            f"Warm run: {runner.last_stats.cache_hits}/{runner.last_stats.total} from cache "
            f"in {warm:.2f}s ({cold / warm:.0f}x faster)\n"
        )

        print(format_robustness_summary(sweep["summary"]))
        print()
        print(format_regret(sweep["regret"], worst=6))
        print()

        worst = max(sweep["results"], key=lambda r: r.mlu)
        print(
            f"Worst case overall: {worst.protocol} under {worst.scenario_id} "
            f"reaches MLU {worst.mlu:.3f}"
            + (f" (dropped {worst.dropped_volume:.3g} units)" if worst.dropped_volume else "")
        )


if __name__ == "__main__":
    main()
