"""Online TE controller demo: replay an Abilene failure/recovery trace.

The scenario engine answers "how bad is each failure?" by re-posing every
perturbed instance from scratch.  This example shows the *online* view
instead: a :class:`~repro.online.TEController` holds live routing state for
the Abilene backbone and consumes a timed event trace — every trunk fails
for five simulated minutes and then heals — through the discrete-event
simulator.  Each event is absorbed with an incremental shortest-path update
(only the affected destination DAGs are touched), the MLU timeline is
sampled after every event, and at the end the worst outage is re-optimised
with a warm-started Fortz-Thorup weight search.

Run with:  PYTHONPATH=src python examples/online_controller.py
"""

from __future__ import annotations

import time

from repro.online import TEController, failure_recovery_trace
from repro.protocols.fortz_thorup import FortzThorup
from repro.scenarios import single_link_failures
from repro.simulator.events import Simulator
from repro.topology.backbones import abilene_network
from repro.traffic.fortz_thorup_tm import abilene_traffic_matrix


def main() -> None:
    network = abilene_network()
    demands = abilene_traffic_matrix(
        network, total_volume=1.0, seed=1
    ).scaled(0.12 * network.total_capacity())
    scenarios = single_link_failures(network)
    trace = failure_recovery_trace(network, scenarios, period=600.0, outage=300.0)

    controller = TEController(network, demands)
    baseline = controller.measure()
    print(
        f"Topology: {network.name} ({network.num_nodes} nodes, {network.num_links} links)\n"
        f"Demands:  {len(demands)} pairs, {demands.total_volume():.1f} units "
        f"(baseline MLU {baseline.mlu:.3f})\n"
        f"Trace:    {len(scenarios)} trunk outages over {trace[-1].time / 60:.0f} "
        f"simulated minutes ({len(trace)} link events)\n"
    )

    timeline = []

    def sample(ctrl: TEController, update) -> None:
        measurement = ctrl.measure()
        timeline.append((update.event.time, update.event.kind, measurement))

    simulator = Simulator()
    controller.bind(simulator, trace, on_update=sample)
    start = time.perf_counter()
    simulator.run()
    elapsed = time.perf_counter() - start

    stats = controller.spt.stats
    print(
        f"Replayed {simulator.processed_events} events in {elapsed * 1e3:.0f} ms wall "
        f"({stats.incremental_updates} incremental DAG updates, "
        f"{stats.full_rebuilds} full rebuilds, "
        f"{stats.destinations_changed} destination recompiles)\n"
    )

    # One row per outage: the measurement after the *last* failure event of
    # each timestamp (a trunk cut arrives as two directed-link events).
    outages = {}
    for when, kind, measurement in timeline:
        if kind == "link-failure":
            outages[when] = measurement
    worst = max(outages.items(), key=lambda entry: entry[1].mlu)
    print("time(min)  outage MLU   note")
    for when, measurement in sorted(outages.items()):
        note = []
        if measurement.dropped_volume:
            note.append(f"dropped {measurement.dropped_volume:.2g} units")
        if measurement is worst[1]:
            note.append("<- worst outage")
        print(f"{when / 60:8.1f}  {measurement.mlu:10.3f}   {' '.join(note)}")

    final = controller.measure()
    print(
        f"\nAfter the last recovery the controller is back at baseline "
        f"(MLU {final.mlu:.3f} vs {baseline.mlu:.3f}).\n"
    )

    # Re-optimise the worst outage with a warm-started weight search.
    worst_time, worst_measurement = worst
    scenario = scenarios[int(worst_time // 600)]
    print(
        f"Re-optimising the worst outage ({scenario.scenario_id}, "
        f"MLU {worst_measurement.mlu:.3f}) with warm-started Fortz-Thorup..."
    )
    from repro.online import failure_events

    controller.apply_all(failure_events(network, scenario))
    before = controller.measure()
    result = controller.reoptimize(
        optimizer=FortzThorup(restarts=1, seed=0, max_evaluations=150)
    )
    after = controller.measure()
    print(
        f"  {result.evaluations} routing evaluations (budget 150), "
        f"piecewise-linear cost {result.cost:.1f}: "
        f"MLU {before.mlu:.3f} -> {after.mlu:.3f} under the failure"
    )


if __name__ == "__main__":
    main()
