"""Online TE controller demo: replay an Abilene failure/recovery trace.

The scenario engine answers "how bad is each failure?" by re-posing every
perturbed instance from scratch.  This example shows the *online* view
instead: :func:`repro.online.replay_failure_trace` (the same engine behind
``repro replay``) holds live routing state for the Abilene backbone in a
:class:`~repro.online.TEController` and consumes a timed event trace —
every trunk fails for five simulated minutes and then heals — through the
discrete-event simulator.  Each event is absorbed with an incremental
shortest-path update (only the affected destination DAGs are touched), the
MLU timeline is sampled after every event, and at the end the worst outage
is re-optimised with a warm-started Fortz-Thorup weight search.

Run with:  PYTHONPATH=src python examples/online_controller.py
"""

from __future__ import annotations

from repro.online import replay_failure_trace
from repro.protocols.fortz_thorup import FortzThorup
from repro.scenarios import single_link_failures
from repro.topology.backbones import abilene_network
from repro.traffic.fortz_thorup_tm import abilene_traffic_matrix


def main() -> None:
    network = abilene_network()
    demands = abilene_traffic_matrix(
        network, total_volume=1.0, seed=1
    ).scaled(0.12 * network.total_capacity())
    scenarios = single_link_failures(network)
    period, outage = 600.0, 300.0

    replay = replay_failure_trace(network, demands, scenarios, period=period, outage=outage)
    baseline = replay.baseline
    trace_end = (len(scenarios) - 1) * period + outage  # last recovery event
    print(
        f"Topology: {network.name} ({network.num_nodes} nodes, {network.num_links} links)\n"
        f"Demands:  {len(demands)} pairs, {demands.total_volume():.1f} units "
        f"(baseline MLU {baseline.mlu:.3f})\n"
        f"Trace:    {len(scenarios)} trunk outages over "
        f"{trace_end / 60:.0f} simulated minutes "
        f"({replay.processed_events} link events)\n"
    )

    controller = replay.controller
    stats = controller.spt.stats
    print(
        f"Replayed {replay.processed_events} events in {replay.elapsed * 1e3:.0f} ms wall "
        f"({stats.incremental_updates} incremental DAG updates, "
        f"{stats.full_rebuilds} full rebuilds, "
        f"{stats.destinations_changed} destination recompiles)\n"
    )

    worst = replay.worst
    print("time(min)  outage MLU   note")
    for row in replay.outages:
        note = []
        if row.dropped_volume:
            note.append(f"dropped {row.dropped_volume:.2g} units")
        if row is worst:
            note.append("<- worst outage")
        print(f"{row.time / 60:8.1f}  {row.mlu:10.3f}   {' '.join(note)}")

    print(
        f"\nAfter the last recovery the controller is back at baseline "
        f"(MLU {replay.final.mlu:.3f} vs {baseline.mlu:.3f}).\n"
    )

    # Re-optimise the worst outage with a warm-started weight search.
    scenario = next(s for s in scenarios if s.scenario_id == worst.scenario_id)
    print(
        f"Re-optimising the worst outage ({scenario.scenario_id}, "
        f"MLU {worst.mlu:.3f}) with warm-started Fortz-Thorup..."
    )
    from repro.online import failure_events

    controller.apply_all(failure_events(network, scenario))
    before = controller.measure()
    result = controller.reoptimize(
        optimizer=FortzThorup(restarts=1, seed=0, max_evaluations=150)
    )
    after = controller.measure()
    print(
        f"  {result.evaluations} routing evaluations (budget 150), "
        f"piecewise-linear cost {result.cost:.1f}: "
        f"MLU {before.mlu:.3f} -> {after.mlu:.3f} under the failure"
    )


if __name__ == "__main__":
    main()
