"""SPEF vs PEFT in the flow-level simulator (the paper's SSFnet experiment).

Installs the forwarding state of SPEF and PEFT on the Cernet2 backbone,
offers the Table IV demands as Poisson flow arrivals for 400 simulated
seconds, and reports the mean load carried by every link -- the Fig. 11
experiment.  The point of the comparison: SPEF restricts itself to shortest
paths yet spreads the load at least as evenly as PEFT's all-downward-paths
splitting.

Run with:  python examples/spef_vs_peft_simulation.py
"""

from __future__ import annotations

from repro import PEFT, SPEFProtocol
from repro.analysis.experiments import table4_demands
from repro.analysis.reporting import format_table
from repro.simulator import simulate_protocol
from repro.topology import cernet2_network, fig4_network


def run_case(name: str, network, demands, duration: float = 400.0) -> None:
    print(f"=== {name}: {network.num_nodes} nodes, {network.num_links} links, "
          f"{demands.total_volume():g} units of demand, {duration:.0f}s simulation ===\n")
    results = {}
    for label, protocol in (("SPEF", SPEFProtocol()), ("PEFT", PEFT())):
        results[label] = simulate_protocol(
            network, demands, protocol, duration=duration, seed=7
        )

    rows = []
    for link in network.links:
        spef_load = results["SPEF"].mean_link_load[link.endpoints]
        peft_load = results["PEFT"].mean_link_load[link.endpoints]
        if spef_load < 1e-6 and peft_load < 1e-6:
            continue
        rows.append(
            {
                "link": f"{link.source}->{link.target}",
                "SPEF load": round(spef_load, 3),
                "PEFT load": round(peft_load, 3),
            }
        )
    print(format_table(rows, title="Mean link load (only links that carried traffic)"))

    summary = [
        {
            "protocol": label,
            "used links": len(result.used_links()),
            "load stddev": round(result.load_variation(), 3),
            "flows simulated": result.flows_started,
            "dropped": result.dropped_flows,
        }
        for label, result in results.items()
    ]
    print()
    print(format_table(summary, title="Summary"))
    print()


def main() -> None:
    demands = table4_demands()
    run_case("Simple network (Fig. 4)", fig4_network(), demands["simple"])
    run_case("Cernet2 backbone", cernet2_network(), demands["cernet2"])


if __name__ == "__main__":
    main()
