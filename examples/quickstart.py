"""Quickstart: configure SPEF on a small network and compare it with OSPF.

Builds the paper's 7-node example topology (Fig. 4), routes the Table IV
demands with plain OSPF (InvCap weights + even ECMP) and with SPEF, and
prints the two link weights SPEF installs, the per-link utilizations and the
headline metrics.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import OSPF, SPEF
from repro.analysis.reporting import format_table
from repro.core.objectives import normalized_utility
from repro.topology import fig4_demands, fig4_network


def main() -> None:
    network = fig4_network()
    demands = fig4_demands()
    print(f"Topology: {network.name} ({network.num_nodes} nodes, {network.num_links} links)")
    print(f"Demands:  {len(demands)} pairs, {demands.total_volume():g} units total\n")

    # --- Baseline: OSPF with InvCap weights and even ECMP splitting --------
    ospf = OSPF()
    ospf_flows = ospf.route(network, demands)

    # --- SPEF: two weights per link, provably optimal traffic engineering --
    spef = SPEF()
    solution = spef.fit(network, demands)

    rows = []
    for link in network.links:
        rows.append(
            {
                "link": f"{link.source}->{link.target}",
                "first weight": round(float(solution.first_weights[link.index]), 3),
                "second weight": round(float(solution.second_weights[link.index]), 3),
                "OSPF util": round(float(ospf_flows.utilization()[link.index]), 3),
                "SPEF util": round(float(solution.utilization()[link.index]), 3),
            }
        )
    print(format_table(rows, title="Per-link weights and utilizations"))
    print()

    summary = [
        {
            "protocol": "OSPF",
            "max utilization": round(ospf_flows.max_link_utilization(), 3),
            "utility": round(normalized_utility(ospf_flows.utilization()), 3),
        },
        {
            "protocol": "SPEF",
            "max utilization": round(solution.max_link_utilization(), 3),
            "utility": round(solution.normalized_utility(), 3),
        },
    ]
    print(format_table(summary, title="Summary (utility = sum of log(1 - utilization))"))
    print()
    print(f"SPEF optimality gap vs. the TE optimum: {solution.optimality_gap():.2e}")

    # Peek at one router's forwarding table (Table II of the paper).
    table = solution.forwarding_tables[1]
    destination = 2
    print(f"\nForwarding table of router 1 towards destination {destination}:")
    for entry in table.entries.get(destination, []):
        lengths = ", ".join(f"{x:.3f}" for x in entry.path_lengths)
        print(
            f"  next hop {entry.next_hop}: {entry.num_paths} equal-cost path(s), "
            f"second-weight lengths [{lengths}], split ratio {entry.split_ratio:.3f}"
        )


if __name__ == "__main__":
    main()
