"""Traffic engineering on the Abilene backbone: OSPF vs Fortz-Thorup vs SPEF.

Reproduces the Fig. 9 / Fig. 10 style comparison on the real Abilene topology
with a Fortz-Thorup-style traffic matrix: as the network load grows, plain
OSPF starts overloading links while SPEF keeps realising the optimal traffic
distribution.  The Fortz-Thorup local search (optimised single weights with
even ECMP) is included as the classic middle ground.

Run with:  python examples/abilene_te.py
"""

from __future__ import annotations

from repro import OSPF, FortzThorup, SPEFProtocol
from repro.analysis.reporting import format_series, format_table
from repro.core.objectives import normalized_utility
from repro.solvers.mcf import solve_min_mlu
from repro.topology import abilene_network
from repro.traffic import abilene_traffic_matrix, scale_to_network_load


def main() -> None:
    network = abilene_network()
    base = abilene_traffic_matrix(network, total_volume=1.0, seed=1)

    # Calibrate the sweep the way the paper does: increase demand until the
    # optimal (min-max) MLU approaches 100%.
    base_load = base.network_load(network)
    base_mlu = solve_min_mlu(network, base, allow_overload=True).objective
    saturation_load = base_load * 0.9 / base_mlu
    loads = [round(f * saturation_load, 4) for f in (0.5, 0.65, 0.8, 0.9, 1.0)]

    protocols = {
        "OSPF": lambda: OSPF(),
        "FortzThorup": lambda: FortzThorup(max_weight=20, max_evaluations=200, seed=1),
        "SPEF": lambda: SPEFProtocol(),
    }

    utility_series = {name: [] for name in protocols}
    mlu_series = {name: [] for name in protocols}
    for load in loads:
        demands = scale_to_network_load(network, base, load)
        for name, factory in protocols.items():
            flows = factory().route(network, demands)
            utility_series[name].append(round(normalized_utility(flows.utilization()), 3))
            mlu_series[name].append(round(flows.max_link_utilization(), 3))

    print(f"Abilene: {network.num_nodes} nodes, {network.num_links} links, "
          f"saturation network load ~{saturation_load:.3f}\n")
    print(format_series(utility_series, x_values=loads, x_label="load",
                        title="Utility (sum log(1 - u)) vs network load  [-inf = some link overloaded]"))
    print()
    print(format_series(mlu_series, x_values=loads, x_label="load",
                        title="Maximum link utilization vs network load"))

    # Zoom into the highest load: sorted link utilizations (Fig. 9 view).
    demands = scale_to_network_load(network, base, loads[-1])
    rows = []
    ospf_sorted = OSPF().route(network, demands).sorted_utilizations()
    spef_sorted = SPEFProtocol().route(network, demands).sorted_utilizations()
    for rank, (o, s) in enumerate(zip(ospf_sorted, spef_sorted), start=1):
        rows.append({"rank": rank, "OSPF": round(float(o), 3), "SPEF": round(float(s), 3)})
    print()
    print(format_table(rows[:12], title=f"Hottest links at load {loads[-1]} (sorted utilizations)"))


if __name__ == "__main__":
    main()
