"""Exploring the (q, beta) objective family: how beta trades path length for balance.

The generic objective of the paper interpolates between minimum-hop routing
(beta = 0), proportional load balance / M/M/1 delay (beta = 1) and min-max
load balance (beta -> infinity).  This example sweeps beta on the Fig. 1
motivating example and on the Cernet2 backbone and shows how the maximum link
utilization, the average path length and the total carried traffic move as
beta grows -- the operator's dial between "short paths" and "balanced links".

Run with:  python examples/beta_tradeoff.py
"""

from __future__ import annotations

import numpy as np

from repro import LoadBalanceObjective, TEProblem, solve_optimal_te
from repro.analysis.reporting import format_table
from repro.solvers.mcf import solve_min_mlu
from repro.topology import cernet2_network, fig1_demands, fig1_network
from repro.traffic import cernet2_traffic_matrix, scale_to_network_load

BETAS = (0.0, 0.5, 1.0, 2.0, 4.0, 8.0)


def sweep(network, demands, title: str) -> None:
    optimal_mlu = solve_min_mlu(network, demands, allow_overload=True).objective
    rows = []
    for beta in BETAS:
        objective = LoadBalanceObjective(beta=beta)
        solution = solve_optimal_te(TEProblem(network, demands, objective))
        aggregate = solution.flows.aggregate()
        # Total carried traffic / total demand = demand-weighted mean path length.
        mean_path_length = float(np.sum(aggregate)) / demands.total_volume()
        rows.append(
            {
                "beta": beta,
                "MLU": round(solution.max_link_utilization, 4),
                "mean path length": round(mean_path_length, 3),
                "utility (sum log(1-u))": round(solution.normalized_utility(), 3),
            }
        )
    print(format_table(rows, title=f"{title}  (min-max optimal MLU = {optimal_mlu:.3f})"))
    print()


def main() -> None:
    sweep(fig1_network(), fig1_demands(), "Fig. 1 example")

    network = cernet2_network()
    base = cernet2_traffic_matrix(network, mean_utilization=0.25, seed=2010)
    base_mlu = solve_min_mlu(network, base, allow_overload=True).objective
    demands = scale_to_network_load(
        network, base, base.network_load(network) * 0.8 / base_mlu
    )
    sweep(network, demands, "Cernet2 backbone at 80% of saturation")

    print(
        "Reading the tables: beta = 0 minimises the carried traffic (shortest\n"
        "paths) but tolerates hot links; as beta grows the optimum accepts\n"
        "slightly longer paths in exchange for a lower maximum utilization,\n"
        "approaching the min-max optimal MLU."
    )


if __name__ == "__main__":
    main()
